#include "transport/packetizer.h"

#include <gtest/gtest.h>

#include <vector>

namespace rave::transport {
namespace {

// Wraps the out-parameter API for test convenience.
std::vector<net::Packet> Packetize(Packetizer& packetizer,
                                   const codec::EncodedFrame& frame) {
  std::vector<net::Packet> out;
  packetizer.Packetize(frame, out);
  return out;
}

codec::EncodedFrame MakeFrame(int64_t id, int64_t bits,
                              codec::FrameType type = codec::FrameType::kDelta) {
  codec::EncodedFrame f;
  f.frame_id = id;
  f.capture_time = Timestamp::Millis(id * 33);
  f.type = type;
  f.size = DataSize::Bits(bits);
  return f;
}

TEST(PacketizerTest, SingleSmallPacket) {
  Packetizer packetizer;
  const auto packets = Packetize(packetizer, MakeFrame(0, 5'000));
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].size.bits(), 5'000 + 68 * 8);
  EXPECT_EQ(packets[0].packets_in_frame, 1);
  EXPECT_EQ(packets[0].packet_index, 0);
}

TEST(PacketizerTest, SplitsAtMtu) {
  Packetizer packetizer;
  // 1200-byte MTU = 9600 bits payload per packet; 25'000 bits -> 3 packets.
  const auto packets = Packetize(packetizer, MakeFrame(0, 25'000));
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[0].size.bits() - 68 * 8, 9'600);
  EXPECT_EQ(packets[1].size.bits() - 68 * 8, 9'600);
  EXPECT_EQ(packets[2].size.bits() - 68 * 8, 5'800);
  for (const auto& p : packets) {
    EXPECT_EQ(p.packets_in_frame, 3);
    EXPECT_EQ(p.frame_id, 0);
  }
  EXPECT_EQ(packets[2].packet_index, 2);
}

TEST(PacketizerTest, PayloadBitsConserved) {
  Packetizer packetizer;
  for (int64_t bits : {1, 9'600, 9'601, 100'000, 333'333}) {
    const auto packets = Packetize(packetizer, MakeFrame(1, bits));
    int64_t payload = 0;
    for (const auto& p : packets) payload += p.size.bits() - 68 * 8;
    EXPECT_EQ(payload, bits);
  }
}

TEST(PacketizerTest, MediaSeqMonotoneAcrossFrames) {
  Packetizer packetizer;
  const auto a = Packetize(packetizer, MakeFrame(0, 20'000));
  const auto b = Packetize(packetizer, MakeFrame(1, 20'000));
  EXPECT_EQ(a[0].media_seq, 0);
  EXPECT_EQ(a.back().media_seq + 1, b[0].media_seq);
  // Transport seq is unassigned at this stage.
  EXPECT_EQ(a[0].seq, -1);
}

TEST(PacketizerTest, KeyframeFlagAndCaptureTimePropagated) {
  Packetizer packetizer;
  const auto packets =
      Packetize(packetizer, MakeFrame(5, 12'000, codec::FrameType::kKey));
  for (const auto& p : packets) {
    EXPECT_TRUE(p.keyframe);
    EXPECT_EQ(p.capture_time, Timestamp::Millis(5 * 33));
  }
}

TEST(PacketizerTest, SkippedFrameYieldsNothing) {
  Packetizer packetizer;
  codec::EncodedFrame f = MakeFrame(0, 10'000);
  f.skipped = true;
  EXPECT_TRUE(Packetize(packetizer, f).empty());
  codec::EncodedFrame g = MakeFrame(1, 0);
  EXPECT_TRUE(Packetize(packetizer, g).empty());
}

TEST(PacketizerTest, CustomMtu) {
  PacketizerConfig config;
  config.mtu_payload = DataSize::Bytes(500);
  config.overhead = DataSize::Bytes(40);
  Packetizer packetizer(config);
  const auto packets = Packetize(packetizer, MakeFrame(0, 12'000));
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[0].size.bits(), 4'000 + 320);
}

}  // namespace
}  // namespace rave::transport
