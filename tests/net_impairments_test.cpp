// Tests for the non-congestive loss model and the cross-traffic generator.
#include <gtest/gtest.h>

#include "net/cross_traffic.h"
#include "net/link.h"
#include "rtc/session.h"

namespace rave::net {
namespace {

Packet MediaPacket(int64_t seq, int64_t bits = 9'600) {
  Packet p;
  p.seq = seq;
  p.media_seq = seq;
  p.size = DataSize::Bits(bits);
  return p;
}

TEST(LossModelTest, RandomLossMatchesConfiguredRate) {
  EventLoop loop;
  int delivered = 0;
  Link::Config config;
  config.trace = CapacityTrace::Constant(DataRate::MegabitsPerSecF(50.0));
  config.queue_capacity = DataSize::Bytes(10'000'000);
  config.loss.random_loss = 0.10;
  Link link(loop, std::move(config),
            [&](const Packet&, Timestamp) { ++delivered; });
  const int sent = 6'000;  // fits the queue: 6000 x 9600 bits < 80 Mbit
  for (int i = 0; i < sent; ++i) link.Send(MediaPacket(i));
  loop.RunAll();
  EXPECT_NEAR(static_cast<double>(delivered) / sent, 0.9, 0.02);
  EXPECT_EQ(delivered + link.stats().packets_lost_random, sent);
  EXPECT_EQ(link.stats().packets_dropped, 0);
}

TEST(LossModelTest, LossIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    EventLoop loop;
    int delivered = 0;
    Link::Config config;
    config.trace = CapacityTrace::Constant(DataRate::MegabitsPerSecF(50.0));
    config.queue_capacity = DataSize::Bytes(10'000'000);
    config.loss.random_loss = 0.2;
    config.loss.seed = seed;
    Link link(loop, std::move(config),
              [&](const Packet&, Timestamp) { ++delivered; });
    for (int i = 0; i < 1000; ++i) link.Send(MediaPacket(i));
    loop.RunAll();
    return delivered;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(LossModelTest, GilbertBurstsLoseMoreThanIidAtSameMean) {
  // With the same long-run loss fraction, Gilbert loss arrives in bursts —
  // count the longest run of consecutive losses.
  auto longest_run = [](bool gilbert) {
    EventLoop loop;
    std::vector<bool> got(30'000, false);
    Link::Config config;
    config.trace = CapacityTrace::Constant(DataRate::MegabitsPerSecF(100.0));
    config.queue_capacity = DataSize::Bytes(100'000'000);
    if (gilbert) {
      config.loss.gilbert_enabled = true;
      config.loss.gilbert = {.p_good_to_bad = 0.005, .p_bad_to_good = 0.1};
      config.loss.gilbert_bad_loss = 0.7;
      // The chain steps on sim time; 30k back-to-back packets only span
      // ~2.9 s, so step every 1 ms to get enough transitions for bursts.
      config.loss.gilbert_step = TimeDelta::Millis(1);
    } else {
      config.loss.random_loss = 0.033;  // similar long-run mean
    }
    Link link(loop, std::move(config), [&](const Packet& p, Timestamp) {
      got[static_cast<size_t>(p.seq)] = true;
    });
    for (int i = 0; i < 30'000; ++i) link.Send(MediaPacket(i));
    loop.RunAll();
    int longest = 0;
    int current = 0;
    for (bool ok : got) {
      current = ok ? 0 : current + 1;
      longest = std::max(longest, current);
    }
    return longest;
  };
  EXPECT_GT(longest_run(true), 2 * longest_run(false));
}

TEST(LossModelTest, ExtremeProbabilitiesAreExact) {
  // p = 1 loses everything and p = 0 delivers everything — exactly, with no
  // RNG draw involved (the contract the handover loss swap relies on).
  auto delivered_of = [](double p) {
    EventLoop loop;
    int delivered = 0;
    Link::Config config;
    config.trace = CapacityTrace::Constant(DataRate::MegabitsPerSecF(50.0));
    config.queue_capacity = DataSize::Bytes(10'000'000);
    config.loss.random_loss = p;
    Link link(loop, std::move(config),
              [&](const Packet&, Timestamp) { ++delivered; });
    for (int i = 0; i < 500; ++i) link.Send(MediaPacket(i));
    loop.RunAll();
    return delivered;
  };
  EXPECT_EQ(delivered_of(1.0), 0);
  EXPECT_EQ(delivered_of(0.0), 500);
}

TEST(LossModelTest, GilbertDwellIsWallClockNotPacketCount) {
  // A deterministic alternating chain (both transition probabilities 1.0,
  // stepped every 10 ms) puts the link in the bad state during exactly the
  // odd 10 ms windows: [10,20), [30,40), ... With gilbert_bad_loss = 1.0
  // the lost packets are exactly those completing serialization inside a
  // bad window — regardless of how often packets sample the chain. Under
  // the old per-packet stepping this schedule would depend entirely on the
  // send cadence.
  auto run = [](int64_t cadence_us, int packets) {
    EventLoop loop;
    std::vector<bool> got(static_cast<size_t>(packets), false);
    Link::Config config;
    // 1200-byte packet at 100 Mbps: 96 us serialization, so completion time
    // is send time + 96 us and never crosses a 10 ms boundary here.
    config.trace = CapacityTrace::Constant(DataRate::MegabitsPerSecF(100.0));
    config.queue_capacity = DataSize::Bytes(10'000'000);
    config.loss.gilbert_enabled = true;
    config.loss.gilbert = {.p_good_to_bad = 1.0, .p_bad_to_good = 1.0};
    config.loss.gilbert_bad_loss = 1.0;
    config.loss.gilbert_step = TimeDelta::Millis(10);
    Link link(loop, std::move(config), [&](const Packet& p, Timestamp) {
      got[static_cast<size_t>(p.seq)] = true;
    });
    for (int i = 0; i < packets; ++i) {
      loop.ScheduleAt(Timestamp::Micros(i * cadence_us),
                      [&link, i] { link.Send(MediaPacket(i)); });
    }
    loop.RunAll();
    return got;
  };

  for (int64_t cadence_us : {1'000, 4'000}) {
    const int packets = 100;
    const auto got = run(cadence_us, packets);
    for (int i = 0; i < packets; ++i) {
      const int64_t complete_us = i * cadence_us + 96;
      const bool bad_window = (complete_us / 10'000) % 2 == 1;
      EXPECT_EQ(got[static_cast<size_t>(i)], !bad_window)
          << "cadence " << cadence_us << " us, packet " << i;
    }
  }
}

TEST(LossModelTest, GilbertChainUnitProbabilitiesNeedNoRng) {
  // GilbertProcess::Step short-circuits p <= 0 (stay) and p >= 1 (flip)
  // without consuming randomness: the trajectory is seed-independent.
  GilbertProcess a({.p_good_to_bad = 1.0, .p_bad_to_good = 1.0}, Rng(1));
  GilbertProcess b({.p_good_to_bad = 1.0, .p_bad_to_good = 1.0}, Rng(999));
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.Step(), b.Step()) << "step " << i;
    EXPECT_EQ(a.bad(), i % 2 == 0);  // good -> bad on the first step
  }
  GilbertProcess frozen({.p_good_to_bad = 0.0, .p_bad_to_good = 0.0}, Rng(1));
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(frozen.Step());
}

TEST(CrossTrafficTest, GeneratesConfiguredRateWhileOn) {
  EventLoop loop;
  int64_t cross_bits = 0;
  Link::Config config;
  config.trace = CapacityTrace::Constant(DataRate::MegabitsPerSecF(50.0));
  config.queue_capacity = DataSize::Bytes(10'000'000);
  Link link(loop, std::move(config), [&](const Packet& p, Timestamp) {
    if (p.frame_id < 0) cross_bits += p.size.bits();
  });
  CrossTraffic::Config ct_config;
  ct_config.rate = DataRate::KilobitsPerSec(800);
  ct_config.mean_on = TimeDelta::Seconds(10'000);  // effectively always on
  ct_config.start_on = true;
  CrossTraffic cross(loop, link, ct_config);
  cross.Start();
  loop.RunFor(TimeDelta::Seconds(10));
  EXPECT_NEAR(static_cast<double>(cross_bits) / 10.0 / 1e3, 800.0, 40.0);
}

TEST(CrossTrafficTest, OffStateSendsNothing) {
  EventLoop loop;
  Link::Config config;
  Link link(loop, std::move(config), [](const Packet&, Timestamp) {});
  CrossTraffic::Config ct_config;
  ct_config.mean_off = TimeDelta::Seconds(10'000);
  ct_config.start_on = false;
  CrossTraffic cross(loop, link, ct_config);
  cross.Start();
  loop.RunFor(TimeDelta::Seconds(5));
  EXPECT_EQ(cross.packets_sent(), 0);
  EXPECT_FALSE(cross.on());
}

TEST(CrossTrafficTest, TogglesBetweenStates) {
  EventLoop loop;
  Link::Config config;
  config.trace = CapacityTrace::Constant(DataRate::MegabitsPerSecF(50.0));
  config.queue_capacity = DataSize::Bytes(10'000'000);
  Link link(loop, std::move(config), [](const Packet&, Timestamp) {});
  CrossTraffic::Config ct_config;
  ct_config.mean_on = TimeDelta::Millis(500);
  ct_config.mean_off = TimeDelta::Millis(500);
  CrossTraffic cross(loop, link, ct_config);
  cross.Start();
  loop.RunFor(TimeDelta::Seconds(30));
  // Roughly half the time on: packets flowed, but far fewer than always-on.
  EXPECT_GT(cross.packets_sent(), 100);
  const int64_t always_on_estimate =
      30 * 800'000 / (1200 * 8);  // 30 s at 800 kbps
  EXPECT_LT(cross.packets_sent(), always_on_estimate);
}

TEST(ImpairmentsIntegrationTest, SessionSurvivesLossyLink) {
  rtc::SessionConfig config;
  config.scheme = rtc::Scheme::kAdaptive;
  config.duration = TimeDelta::Seconds(20);
  config.link.trace =
      CapacityTrace::Constant(DataRate::KilobitsPerSec(2000));
  config.link.loss.random_loss = 0.02;
  const rtc::SessionResult result = rtc::RunSession(config);
  // RTX recovers nearly everything; a 2% loss rate must not decimate frames.
  EXPECT_GT(result.summary.frames_delivered,
            result.summary.frames_captured * 9 / 10);
}

TEST(ImpairmentsIntegrationTest, CrossTrafficShrinksAvailableCapacity) {
  rtc::SessionConfig config;
  config.scheme = rtc::Scheme::kAdaptive;
  config.duration = TimeDelta::Seconds(30);
  config.initial_rate = DataRate::KilobitsPerSec(2100);
  config.link.trace =
      CapacityTrace::Constant(DataRate::KilobitsPerSec(2500));
  net::CrossTraffic::Config ct;
  ct.rate = DataRate::KilobitsPerSec(1200);
  ct.mean_on = TimeDelta::Seconds(8);
  ct.mean_off = TimeDelta::Seconds(8);
  config.cross_traffic = ct;
  const rtc::SessionResult with_cross = rtc::RunSession(config);
  config.cross_traffic.reset();
  const rtc::SessionResult without = rtc::RunSession(config);
  // Competing traffic must show up as reduced encoded bitrate.
  EXPECT_LT(with_cross.summary.encoded_bitrate_kbps,
            without.summary.encoded_bitrate_kbps * 0.9);
  // But the controller keeps latency bounded regardless.
  EXPECT_LT(with_cross.summary.latency_p95_ms, 400.0);
}

}  // namespace
}  // namespace rave::net
