#include "core/adaptive_rate_control.h"

#include <gtest/gtest.h>

namespace rave::core {
namespace {

video::RawFrame MakeFrame(int64_t id = 0) {
  video::RawFrame f;
  f.frame_id = id;
  f.spatial_complexity = 1.0;
  f.temporal_complexity = 0.5;
  return f;
}

NetworkObservation MakeObs(Timestamp at, int64_t target_kbps,
                           int64_t pacer_bits = 0,
                           bool overuse_decrease = false) {
  NetworkObservation obs;
  obs.at = at;
  obs.target = DataRate::KilobitsPerSec(target_kbps);
  obs.acked_rate = DataRate::KilobitsPerSec(target_kbps);
  obs.rtt = TimeDelta::Millis(50);
  obs.pacer_queue = DataSize::Bits(pacer_bits);
  obs.overuse_decrease = overuse_decrease;
  return obs;
}

codec::FrameOutcome MakeOutcome(const codec::FrameGuidance& guidance,
                                const video::RawFrame& frame,
                                codec::FrameType type, int64_t bits) {
  codec::FrameOutcome outcome;
  outcome.type = type;
  outcome.qp = guidance.qp;
  outcome.qscale = codec::QpToQscale(guidance.qp);
  outcome.size = DataSize::Bits(bits);
  outcome.complexity_term = 1280.0 * 720.0 *
                            (type == codec::FrameType::kKey
                                 ? frame.spatial_complexity
                                 : frame.temporal_complexity);
  return outcome;
}

AdaptiveConfig DefaultConfig() {
  AdaptiveConfig config;
  config.fps = 30.0;
  config.initial_target = DataRate::KilobitsPerSec(2000);
  return config;
}

// Feeds `n` steady frames so predictors and QP state settle.
void WarmUp(AdaptiveRateControl& rc, int n, int64_t target_kbps) {
  const video::RawFrame frame = MakeFrame();
  for (int i = 0; i < n; ++i) {
    const Timestamp now = Timestamp::Millis(33 * i);
    rc.OnNetworkUpdate(MakeObs(now, target_kbps));
    const codec::FrameGuidance g =
        rc.PlanFrame(frame, codec::FrameType::kDelta, now);
    // Assume the encoder hits the plan within noise.
    rc.OnFrameEncoded(
        MakeOutcome(g, frame, codec::FrameType::kDelta,
                    static_cast<int64_t>(target_kbps * 1000.0 / 30.0)),
        now);
  }
}

TEST(AdaptiveRateControlTest, QpRisesImmediatelyOnDrop) {
  AdaptiveRateControl rc(DefaultConfig());
  WarmUp(rc, 60, 2000);
  const codec::FrameGuidance before =
      rc.PlanFrame(MakeFrame(), codec::FrameType::kDelta, Timestamp::Seconds(2));

  // 60% drop detected via rich observation.
  rc.OnNetworkUpdate(MakeObs(Timestamp::Millis(2033), 800, 200'000, true));
  EXPECT_TRUE(rc.drop_active());
  const codec::FrameGuidance after =
      rc.PlanFrame(MakeFrame(), codec::FrameType::kDelta,
                   Timestamp::Millis(2033));
  // One frame later the QP has already moved by far more than the baseline's
  // per-frame clamp would allow.
  EXPECT_GT(after.qp, before.qp + 5.0);
  EXPECT_TRUE(after.max_size.IsFinite());
}

TEST(AdaptiveRateControlTest, QpRecoveryIsGradual) {
  AdaptiveConfig config = DefaultConfig();
  config.qp_down_step = 1.0;
  AdaptiveRateControl rc(config);
  WarmUp(rc, 60, 600);  // high QP operating point
  const codec::FrameGuidance at_low =
      rc.PlanFrame(MakeFrame(), codec::FrameType::kDelta,
                   Timestamp::Seconds(2));
  // Capacity jumps 3x; QP must come down at most qp_down_step per frame.
  rc.OnNetworkUpdate(MakeObs(Timestamp::Millis(2033), 1800));
  const codec::FrameGuidance next =
      rc.PlanFrame(MakeFrame(), codec::FrameType::kDelta,
                   Timestamp::Millis(2033));
  EXPECT_GE(next.qp, at_low.qp - 1.5);
}

TEST(AdaptiveRateControlTest, SkipsUnderExtremeBacklogThenBounded) {
  AdaptiveRateControl rc(DefaultConfig());
  WarmUp(rc, 60, 1000);
  // 500 ms of backlog.
  rc.OnNetworkUpdate(MakeObs(Timestamp::Seconds(3), 1000, 500'000, true));
  int skips = 0;
  for (int i = 0; i < 5; ++i) {
    const codec::FrameGuidance g = rc.PlanFrame(
        MakeFrame(), codec::FrameType::kDelta, Timestamp::Seconds(3));
    if (!g.skip) break;
    codec::FrameOutcome outcome;
    outcome.skipped = true;
    rc.OnFrameEncoded(outcome, Timestamp::Seconds(3));
    ++skips;
  }
  EXPECT_GE(skips, 1);
  EXPECT_LE(skips, 2);  // max_consecutive_skips
}

TEST(AdaptiveRateControlTest, AblationDisableSkip) {
  AdaptiveConfig config = DefaultConfig();
  config.enable_skip = false;
  AdaptiveRateControl rc(config);
  WarmUp(rc, 60, 1000);
  rc.OnNetworkUpdate(MakeObs(Timestamp::Seconds(3), 1000, 500'000, true));
  const codec::FrameGuidance g = rc.PlanFrame(
      MakeFrame(), codec::FrameType::kDelta, Timestamp::Seconds(3));
  EXPECT_FALSE(g.skip);
}

TEST(AdaptiveRateControlTest, AblationDisableFrameCap) {
  AdaptiveConfig config = DefaultConfig();
  config.enable_frame_cap = false;
  AdaptiveRateControl rc(config);
  WarmUp(rc, 60, 1000);
  rc.OnNetworkUpdate(MakeObs(Timestamp::Seconds(3), 400, 100'000, true));
  const codec::FrameGuidance g = rc.PlanFrame(
      MakeFrame(), codec::FrameType::kDelta, Timestamp::Seconds(3));
  EXPECT_FALSE(g.max_size.IsFinite());
}

TEST(AdaptiveRateControlTest, AblationDisableDrainMode) {
  AdaptiveConfig config = DefaultConfig();
  config.enable_drain_mode = false;
  AdaptiveRateControl rc(config);
  WarmUp(rc, 60, 2000);
  rc.OnNetworkUpdate(MakeObs(Timestamp::Seconds(3), 800, 200'000, true));
  EXPECT_FALSE(rc.drop_active());
}

TEST(AdaptiveRateControlTest, SteadyStateQpIsStable) {
  AdaptiveRateControl rc(DefaultConfig());
  WarmUp(rc, 120, 1500);
  // With a steady target and matched encode sizes, consecutive plans must
  // not oscillate.
  double min_qp = 100.0;
  double max_qp = 0.0;
  const video::RawFrame frame = MakeFrame();
  for (int i = 0; i < 60; ++i) {
    const Timestamp now = Timestamp::Millis(4000 + 33 * i);
    rc.OnNetworkUpdate(MakeObs(now, 1500));
    const codec::FrameGuidance g =
        rc.PlanFrame(frame, codec::FrameType::kDelta, now);
    min_qp = std::min(min_qp, g.qp);
    max_qp = std::max(max_qp, g.qp);
    rc.OnFrameEncoded(MakeOutcome(g, frame, codec::FrameType::kDelta, 50'000),
                      now);
  }
  EXPECT_LT(max_qp - min_qp, 3.0);
}

TEST(AdaptiveRateControlTest, SetTargetRateFallbackPath) {
  AdaptiveRateControl rc(DefaultConfig());
  rc.SetTargetRate(DataRate::KilobitsPerSec(700));
  EXPECT_EQ(rc.current_target().kbps(), 700);
  rc.SetTargetRate(DataRate::Zero());  // ignored
  EXPECT_EQ(rc.current_target().kbps(), 700);
}

TEST(AdaptiveRateControlTest, LocalBacklogAccountingBetweenFeedbacks) {
  AdaptiveRateControl rc(DefaultConfig());
  WarmUp(rc, 60, 1000);
  const NetworkState before = rc.network_state();
  const video::RawFrame frame = MakeFrame();
  const codec::FrameGuidance g =
      rc.PlanFrame(frame, codec::FrameType::kDelta, Timestamp::Seconds(3));
  rc.OnFrameEncoded(MakeOutcome(g, frame, codec::FrameType::kDelta, 80'000),
                    Timestamp::Seconds(3));
  EXPECT_EQ(rc.network_state().backlog.bits(), before.backlog.bits() + 80'000);
}

TEST(AdaptiveRateControlTest, Name) {
  AdaptiveRateControl rc(DefaultConfig());
  EXPECT_EQ(rc.name(), "rave-adaptive");
}

}  // namespace
}  // namespace rave::core
