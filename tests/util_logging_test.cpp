#include "util/logging.h"

#include <gtest/gtest.h>

namespace rave {
namespace {

TEST(LoggingTest, DefaultLevelIsWarning) {
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
}

TEST(LoggingTest, SetLevelRoundTrips) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

TEST(LoggingTest, SuppressedMessagesDoNotEvaluateCheaply) {
  // Streaming into a disabled message must be safe (and is a no-op).
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  RAVE_LOG(kDebug) << "invisible " << 42;
  RAVE_LOG(kInfo) << "also invisible";
  SetLogLevel(before);
}

TEST(LoggingTest, EmittingMessagesIsSafe) {
  // Can't capture stderr portably here; just exercise the enabled path.
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  RAVE_LOG(kWarning) << "test warning " << 3.14;
  SetLogLevel(before);
}

}  // namespace
}  // namespace rave
