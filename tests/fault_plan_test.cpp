#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace rave::fault {
namespace {

TEST(FaultPlanTest, BuildersProduceValidatedEvents) {
  FaultPlan plan;
  plan.Outage(Timestamp::Seconds(10), TimeDelta::Seconds(2))
      .FeedbackBlackhole(Timestamp::Seconds(20), TimeDelta::Seconds(3))
      .DelaySpike(Timestamp::Seconds(30), TimeDelta::Seconds(2),
                  TimeDelta::Millis(150))
      .DuplicationBurst(Timestamp::Seconds(40), TimeDelta::Seconds(5), 0.2)
      .ReorderBurst(Timestamp::Seconds(50), TimeDelta::Seconds(5), 0.2,
                    TimeDelta::Millis(40));
  ASSERT_EQ(plan.events().size(), 5u);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.LastClearTime(), Timestamp::Seconds(55));
}

TEST(FaultPlanTest, EmptyPlan) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.LastClearTime(), Timestamp::Zero());
}

TEST(FaultPlanTest, ValidationRejectsBadEvents) {
  FaultPlan plan;
  // Negative start.
  EXPECT_THROW(plan.Outage(Timestamp::Seconds(-1), TimeDelta::Seconds(1)),
               std::invalid_argument);
  // Non-positive duration.
  EXPECT_THROW(plan.Outage(Timestamp::Seconds(1), TimeDelta::Zero()),
               std::invalid_argument);
  // Probability outside [0,1].
  EXPECT_THROW(
      plan.DuplicationBurst(Timestamp::Seconds(1), TimeDelta::Seconds(1), 1.5),
      std::invalid_argument);
  EXPECT_THROW(plan.ReorderBurst(Timestamp::Seconds(1), TimeDelta::Seconds(1),
                                 -0.1, TimeDelta::Millis(40)),
               std::invalid_argument);
  // Non-positive delay for spike/reorder.
  EXPECT_THROW(plan.DelaySpike(Timestamp::Seconds(1), TimeDelta::Seconds(1),
                               TimeDelta::Zero()),
               std::invalid_argument);
}

TEST(FaultPlanTest, RejectsOverlappingSameKindWindows) {
  FaultPlan plan;
  plan.Outage(Timestamp::Seconds(10), TimeDelta::Seconds(5));
  EXPECT_THROW(plan.Outage(Timestamp::Seconds(12), TimeDelta::Seconds(5)),
               std::invalid_argument);
  // Different kinds may overlap freely.
  plan.FeedbackBlackhole(Timestamp::Seconds(12), TimeDelta::Seconds(5));
  // Back-to-back same-kind windows (end == start) are fine.
  plan.Outage(Timestamp::Seconds(15), TimeDelta::Seconds(1));
  EXPECT_EQ(plan.events().size(), 3u);
}

TEST(FaultPlanTest, ParseSpecAllKinds) {
  const FaultPlan plan = ParseFaultSpec(
      "outage@10+2,blackhole@20+3,spike@30+2:150,dup@12+5:0.2,"
      "reorder@40+5:0.2:40");
  ASSERT_EQ(plan.events().size(), 5u);

  const auto& e = plan.events();
  EXPECT_EQ(e[0].kind, FaultKind::kLinkOutage);
  EXPECT_EQ(e[0].start, Timestamp::Seconds(10));
  EXPECT_EQ(e[0].duration, TimeDelta::Seconds(2));

  EXPECT_EQ(e[1].kind, FaultKind::kFeedbackBlackhole);
  EXPECT_EQ(e[2].kind, FaultKind::kDelaySpike);
  EXPECT_EQ(e[2].delay, TimeDelta::Millis(150));

  EXPECT_EQ(e[3].kind, FaultKind::kDuplication);
  EXPECT_DOUBLE_EQ(e[3].magnitude, 0.2);

  EXPECT_EQ(e[4].kind, FaultKind::kReorder);
  EXPECT_DOUBLE_EQ(e[4].magnitude, 0.2);
  EXPECT_EQ(e[4].delay, TimeDelta::Millis(40));
}

TEST(FaultPlanTest, ParseSpecFractionalTimes) {
  const FaultPlan plan = ParseFaultSpec("outage@1.5+0.25");
  ASSERT_EQ(plan.events().size(), 1u);
  EXPECT_EQ(plan.events()[0].start, Timestamp::Millis(1500));
  EXPECT_EQ(plan.events()[0].duration, TimeDelta::Millis(250));
}

TEST(FaultPlanTest, ParseSpecErrorsNameTheToken) {
  // Unknown kind.
  EXPECT_THROW(ParseFaultSpec("meteor@10+2"), std::invalid_argument);
  // Missing '@'.
  EXPECT_THROW(ParseFaultSpec("outage10+2"), std::invalid_argument);
  // Missing '+DURATION'.
  EXPECT_THROW(ParseFaultSpec("outage@10"), std::invalid_argument);
  // Bad numbers.
  EXPECT_THROW(ParseFaultSpec("outage@ten+2"), std::invalid_argument);
  EXPECT_THROW(ParseFaultSpec("outage@10+nan"), std::invalid_argument);
  // Missing required parameter.
  EXPECT_THROW(ParseFaultSpec("spike@10+2"), std::invalid_argument);
  EXPECT_THROW(ParseFaultSpec("reorder@10+2:0.2"), std::invalid_argument);
  // Empty spec.
  EXPECT_THROW(ParseFaultSpec(""), std::invalid_argument);
  EXPECT_THROW(ParseFaultSpec(","), std::invalid_argument);
  // Structural validation still applies to parsed events.
  EXPECT_THROW(ParseFaultSpec("dup@10+2:1.7"), std::invalid_argument);
  EXPECT_THROW(ParseFaultSpec("outage@10+2,outage@11+2"),
               std::invalid_argument);

  try {
    ParseFaultSpec("outage@10+2,bogus@1+1");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bogus@1+1"), std::string::npos);
  }
}

TEST(FaultPlanTest, HandoverBuilderCarriesCellParameters) {
  net::LossModel loss;
  loss.random_loss = 0.05;
  FaultPlan plan;
  plan.Handover(Timestamp::Seconds(15), TimeDelta::Millis(200),
                DataRate::KilobitsPerSec(900), TimeDelta::Millis(60), loss)
      .Renegotiate(Timestamp::Seconds(20), TimeDelta::Seconds(4),
                   DataRate::KilobitsPerSec(1200));
  ASSERT_EQ(plan.events().size(), 2u);

  const FaultEvent& h = plan.events()[0];
  EXPECT_EQ(h.kind, FaultKind::kHandover);
  EXPECT_EQ(h.duration, TimeDelta::Millis(200));
  EXPECT_EQ(h.rate, DataRate::KilobitsPerSec(900));
  EXPECT_EQ(h.propagation, TimeDelta::Millis(60));
  ASSERT_TRUE(h.loss.has_value());
  EXPECT_DOUBLE_EQ(h.loss->random_loss, 0.05);

  const FaultEvent& r = plan.events()[1];
  EXPECT_EQ(r.kind, FaultKind::kRenegotiate);
  EXPECT_EQ(r.rate, DataRate::KilobitsPerSec(1200));
  EXPECT_FALSE(r.loss.has_value());
}

TEST(FaultPlanTest, HandoverValidationRejectsBadCells) {
  FaultPlan plan;
  // Non-positive rate.
  EXPECT_THROW(plan.Handover(Timestamp::Seconds(1), TimeDelta::Millis(100),
                             DataRate::Zero(), TimeDelta::Millis(30)),
               std::invalid_argument);
  // Negative propagation.
  EXPECT_THROW(plan.Handover(Timestamp::Seconds(1), TimeDelta::Millis(100),
                             DataRate::KilobitsPerSec(900),
                             TimeDelta::Millis(-1)),
               std::invalid_argument);
  // Loss probability outside [0,1] / non-finite.
  net::LossModel bad_loss;
  bad_loss.random_loss = 1.5;
  EXPECT_THROW(plan.Handover(Timestamp::Seconds(1), TimeDelta::Millis(100),
                             DataRate::KilobitsPerSec(900),
                             TimeDelta::Millis(30), bad_loss),
               std::invalid_argument);
  bad_loss.random_loss = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(plan.Handover(Timestamp::Seconds(1), TimeDelta::Millis(100),
                             DataRate::KilobitsPerSec(900),
                             TimeDelta::Millis(30), bad_loss),
               std::invalid_argument);
  // Gilbert loss with a non-positive stepping cadence.
  net::LossModel bad_gilbert;
  bad_gilbert.gilbert_enabled = true;
  bad_gilbert.gilbert_step = TimeDelta::Zero();
  EXPECT_THROW(plan.Handover(Timestamp::Seconds(1), TimeDelta::Millis(100),
                             DataRate::KilobitsPerSec(900),
                             TimeDelta::Millis(30), bad_gilbert),
               std::invalid_argument);
  // Renegotiation with a non-positive rate.
  EXPECT_THROW(plan.Renegotiate(Timestamp::Seconds(1), TimeDelta::Seconds(1),
                                DataRate::Zero()),
               std::invalid_argument);
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlanTest, OverlapRulesApplyToWirelessKinds) {
  FaultPlan plan;
  plan.Handover(Timestamp::Seconds(10), TimeDelta::Millis(200),
                DataRate::KilobitsPerSec(900), TimeDelta::Millis(30));
  EXPECT_THROW(
      plan.Handover(Timestamp::Millis(10'100), TimeDelta::Millis(200),
                    DataRate::KilobitsPerSec(1200), TimeDelta::Millis(30)),
      std::invalid_argument);
  // Back-to-back renegotiation windows (end == start) are legal — the FPV
  // profile chains them.
  plan.Renegotiate(Timestamp::Seconds(12), TimeDelta::Seconds(2),
                   DataRate::KilobitsPerSec(1800));
  plan.Renegotiate(Timestamp::Seconds(14), TimeDelta::Seconds(2),
                   DataRate::KilobitsPerSec(2700));
  EXPECT_THROW(plan.Renegotiate(Timestamp::Seconds(15), TimeDelta::Seconds(2),
                                DataRate::KilobitsPerSec(900)),
               std::invalid_argument);
  EXPECT_EQ(plan.events().size(), 3u);
}

TEST(FaultPlanTest, ParseSpecWirelessKinds) {
  const FaultPlan plan =
      ParseFaultSpec("handover@15+0.2:900:60,reneg@20+4:1200");
  ASSERT_EQ(plan.events().size(), 2u);

  const FaultEvent& h = plan.events()[0];
  EXPECT_EQ(h.kind, FaultKind::kHandover);
  EXPECT_EQ(h.start, Timestamp::Seconds(15));
  EXPECT_EQ(h.duration, TimeDelta::Millis(200));
  EXPECT_EQ(h.rate, DataRate::KilobitsPerSec(900));
  EXPECT_EQ(h.propagation, TimeDelta::Millis(60));
  EXPECT_FALSE(h.loss.has_value());

  const FaultEvent& r = plan.events()[1];
  EXPECT_EQ(r.kind, FaultKind::kRenegotiate);
  EXPECT_EQ(r.rate, DataRate::KilobitsPerSec(1200));

  // The optional fourth handover field sets the new cell's i.i.d. loss.
  const FaultPlan lossy = ParseFaultSpec("handover@15+0.2:900:60:0.05");
  ASSERT_TRUE(lossy.events()[0].loss.has_value());
  EXPECT_DOUBLE_EQ(lossy.events()[0].loss->random_loss, 0.05);
}

TEST(FaultPlanTest, ParseSpecRejectsBadWirelessMagnitudes) {
  // Missing required parameters.
  EXPECT_THROW(ParseFaultSpec("handover@15+0.2"), std::invalid_argument);
  EXPECT_THROW(ParseFaultSpec("handover@15+0.2:900"), std::invalid_argument);
  EXPECT_THROW(ParseFaultSpec("reneg@20+4"), std::invalid_argument);
  // Negative / NaN magnitudes are rejected, not silently clamped.
  EXPECT_THROW(ParseFaultSpec("handover@15+0.2:-900:60"),
               std::invalid_argument);
  EXPECT_THROW(ParseFaultSpec("handover@15+0.2:900:-60"),
               std::invalid_argument);
  EXPECT_THROW(ParseFaultSpec("handover@15+0.2:900:60:-0.1"),
               std::invalid_argument);
  EXPECT_THROW(ParseFaultSpec("handover@15+0.2:nan:60"),
               std::invalid_argument);
  EXPECT_THROW(ParseFaultSpec("reneg@20+4:-1200"), std::invalid_argument);
  EXPECT_THROW(ParseFaultSpec("reneg@20+4:nan"), std::invalid_argument);
  // Negative / NaN durations and probabilities on the classic kinds too.
  EXPECT_THROW(ParseFaultSpec("outage@10+-2"), std::invalid_argument);
  EXPECT_THROW(ParseFaultSpec("dup@10+2:-0.2"), std::invalid_argument);
  EXPECT_THROW(ParseFaultSpec("dup@10+2:nan"), std::invalid_argument);
  EXPECT_THROW(ParseFaultSpec("spike@10+2:nan"), std::invalid_argument);
}

TEST(FaultPlanTest, ParseSpecErrorsEchoTheFullSpec) {
  // Whatever goes wrong — unknown kind, bad number, structural validation,
  // overlapping windows — the message must echo the complete spec string so
  // a user with many comma-separated tokens can find the bad input.
  const std::vector<std::string> bad_specs = {
      "outage@10+2,meteor@1+1",
      "outage@10+2,handover@15+0.2:nan:60",
      "outage@10+2,outage@11+2",
      "handover@10+0.2:900:60,handover@10.1+0.2:1200:30",
      "outage@10+2,dup@1+1:1.7",
  };
  for (const std::string& spec : bad_specs) {
    try {
      ParseFaultSpec(spec);
      FAIL() << "expected std::invalid_argument for '" << spec << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("(in spec '" + spec + "')"),
                std::string::npos)
          << "message '" << e.what() << "' does not echo the spec";
    }
  }
}

TEST(FaultPlanTest, ToStringRendersWirelessKinds) {
  net::LossModel loss;
  loss.random_loss = 0.05;
  FaultPlan plan;
  plan.Handover(Timestamp::Seconds(15), TimeDelta::Millis(200),
                DataRate::KilobitsPerSec(900), TimeDelta::Millis(60), loss)
      .Renegotiate(Timestamp::Seconds(20), TimeDelta::Seconds(4),
                   DataRate::KilobitsPerSec(1200));
  const std::string text = plan.ToString();
  EXPECT_NE(text.find("handover@15s"), std::string::npos) << text;
  EXPECT_NE(text.find("900kbps"), std::string::npos) << text;
  EXPECT_NE(text.find("60ms"), std::string::npos) << text;
  EXPECT_NE(text.find("loss=0.05"), std::string::npos) << text;
  EXPECT_NE(text.find("reneg@20s+4s:1200kbps"), std::string::npos) << text;
}

TEST(FaultPlanTest, ToStringRoundTripsKinds) {
  FaultPlan plan;
  plan.Outage(Timestamp::Seconds(10), TimeDelta::Seconds(2))
      .DelaySpike(Timestamp::Seconds(20), TimeDelta::Seconds(1),
                  TimeDelta::Millis(150));
  const std::string text = plan.ToString();
  EXPECT_NE(text.find("outage@10s+2s"), std::string::npos);
  EXPECT_NE(text.find("spike@20s+1s"), std::string::npos);
  EXPECT_NE(text.find("150ms"), std::string::npos);
}

}  // namespace
}  // namespace rave::fault
