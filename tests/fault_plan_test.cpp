#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rave::fault {
namespace {

TEST(FaultPlanTest, BuildersProduceValidatedEvents) {
  FaultPlan plan;
  plan.Outage(Timestamp::Seconds(10), TimeDelta::Seconds(2))
      .FeedbackBlackhole(Timestamp::Seconds(20), TimeDelta::Seconds(3))
      .DelaySpike(Timestamp::Seconds(30), TimeDelta::Seconds(2),
                  TimeDelta::Millis(150))
      .DuplicationBurst(Timestamp::Seconds(40), TimeDelta::Seconds(5), 0.2)
      .ReorderBurst(Timestamp::Seconds(50), TimeDelta::Seconds(5), 0.2,
                    TimeDelta::Millis(40));
  ASSERT_EQ(plan.events().size(), 5u);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.LastClearTime(), Timestamp::Seconds(55));
}

TEST(FaultPlanTest, EmptyPlan) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.LastClearTime(), Timestamp::Zero());
}

TEST(FaultPlanTest, ValidationRejectsBadEvents) {
  FaultPlan plan;
  // Negative start.
  EXPECT_THROW(plan.Outage(Timestamp::Seconds(-1), TimeDelta::Seconds(1)),
               std::invalid_argument);
  // Non-positive duration.
  EXPECT_THROW(plan.Outage(Timestamp::Seconds(1), TimeDelta::Zero()),
               std::invalid_argument);
  // Probability outside [0,1].
  EXPECT_THROW(
      plan.DuplicationBurst(Timestamp::Seconds(1), TimeDelta::Seconds(1), 1.5),
      std::invalid_argument);
  EXPECT_THROW(plan.ReorderBurst(Timestamp::Seconds(1), TimeDelta::Seconds(1),
                                 -0.1, TimeDelta::Millis(40)),
               std::invalid_argument);
  // Non-positive delay for spike/reorder.
  EXPECT_THROW(plan.DelaySpike(Timestamp::Seconds(1), TimeDelta::Seconds(1),
                               TimeDelta::Zero()),
               std::invalid_argument);
}

TEST(FaultPlanTest, RejectsOverlappingSameKindWindows) {
  FaultPlan plan;
  plan.Outage(Timestamp::Seconds(10), TimeDelta::Seconds(5));
  EXPECT_THROW(plan.Outage(Timestamp::Seconds(12), TimeDelta::Seconds(5)),
               std::invalid_argument);
  // Different kinds may overlap freely.
  plan.FeedbackBlackhole(Timestamp::Seconds(12), TimeDelta::Seconds(5));
  // Back-to-back same-kind windows (end == start) are fine.
  plan.Outage(Timestamp::Seconds(15), TimeDelta::Seconds(1));
  EXPECT_EQ(plan.events().size(), 3u);
}

TEST(FaultPlanTest, ParseSpecAllKinds) {
  const FaultPlan plan = ParseFaultSpec(
      "outage@10+2,blackhole@20+3,spike@30+2:150,dup@12+5:0.2,"
      "reorder@40+5:0.2:40");
  ASSERT_EQ(plan.events().size(), 5u);

  const auto& e = plan.events();
  EXPECT_EQ(e[0].kind, FaultKind::kLinkOutage);
  EXPECT_EQ(e[0].start, Timestamp::Seconds(10));
  EXPECT_EQ(e[0].duration, TimeDelta::Seconds(2));

  EXPECT_EQ(e[1].kind, FaultKind::kFeedbackBlackhole);
  EXPECT_EQ(e[2].kind, FaultKind::kDelaySpike);
  EXPECT_EQ(e[2].delay, TimeDelta::Millis(150));

  EXPECT_EQ(e[3].kind, FaultKind::kDuplication);
  EXPECT_DOUBLE_EQ(e[3].magnitude, 0.2);

  EXPECT_EQ(e[4].kind, FaultKind::kReorder);
  EXPECT_DOUBLE_EQ(e[4].magnitude, 0.2);
  EXPECT_EQ(e[4].delay, TimeDelta::Millis(40));
}

TEST(FaultPlanTest, ParseSpecFractionalTimes) {
  const FaultPlan plan = ParseFaultSpec("outage@1.5+0.25");
  ASSERT_EQ(plan.events().size(), 1u);
  EXPECT_EQ(plan.events()[0].start, Timestamp::Millis(1500));
  EXPECT_EQ(plan.events()[0].duration, TimeDelta::Millis(250));
}

TEST(FaultPlanTest, ParseSpecErrorsNameTheToken) {
  // Unknown kind.
  EXPECT_THROW(ParseFaultSpec("meteor@10+2"), std::invalid_argument);
  // Missing '@'.
  EXPECT_THROW(ParseFaultSpec("outage10+2"), std::invalid_argument);
  // Missing '+DURATION'.
  EXPECT_THROW(ParseFaultSpec("outage@10"), std::invalid_argument);
  // Bad numbers.
  EXPECT_THROW(ParseFaultSpec("outage@ten+2"), std::invalid_argument);
  EXPECT_THROW(ParseFaultSpec("outage@10+nan"), std::invalid_argument);
  // Missing required parameter.
  EXPECT_THROW(ParseFaultSpec("spike@10+2"), std::invalid_argument);
  EXPECT_THROW(ParseFaultSpec("reorder@10+2:0.2"), std::invalid_argument);
  // Empty spec.
  EXPECT_THROW(ParseFaultSpec(""), std::invalid_argument);
  EXPECT_THROW(ParseFaultSpec(","), std::invalid_argument);
  // Structural validation still applies to parsed events.
  EXPECT_THROW(ParseFaultSpec("dup@10+2:1.7"), std::invalid_argument);
  EXPECT_THROW(ParseFaultSpec("outage@10+2,outage@11+2"),
               std::invalid_argument);

  try {
    ParseFaultSpec("outage@10+2,bogus@1+1");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bogus@1+1"), std::string::npos);
  }
}

TEST(FaultPlanTest, ToStringRoundTripsKinds) {
  FaultPlan plan;
  plan.Outage(Timestamp::Seconds(10), TimeDelta::Seconds(2))
      .DelaySpike(Timestamp::Seconds(20), TimeDelta::Seconds(1),
                  TimeDelta::Millis(150));
  const std::string text = plan.ToString();
  EXPECT_NE(text.find("outage@10s+2s"), std::string::npos);
  EXPECT_NE(text.find("spike@20s+1s"), std::string::npos);
  EXPECT_NE(text.find("150ms"), std::string::npos);
}

}  // namespace
}  // namespace rave::fault
