// Integration tests over the full RTC pipeline: determinism, conservation,
// and the paper's headline ordering (adaptive beats the baseline on latency
// across drops without losing quality).
#include "rtc/session.h"

#include <gtest/gtest.h>

#include "net/capacity_trace.h"

namespace rave::rtc {
namespace {

SessionConfig BaseConfig(Scheme scheme) {
  SessionConfig config;
  config.scheme = scheme;
  config.duration = TimeDelta::Seconds(20);
  config.seed = 42;
  config.initial_rate = DataRate::KilobitsPerSec(2100);
  config.link.trace = net::CapacityTrace::StepDrop(
      DataRate::KilobitsPerSec(2500), DataRate::KilobitsPerSec(1000),
      Timestamp::Seconds(8));
  return config;
}

TEST(SessionTest, RunsAllSchemes) {
  for (Scheme scheme : kAllSchemes) {
    const SessionResult result = RunSession(BaseConfig(scheme));
    EXPECT_EQ(result.scheme_name, ToString(scheme));
    // 20 s at 30 fps, inclusive of both boundary ticks.
    EXPECT_EQ(result.summary.frames_captured, 601);
    EXPECT_GT(result.summary.frames_delivered, 350) << ToString(scheme);
    EXPECT_GT(result.summary.latency_mean_ms, 0.0);
    EXPECT_GT(result.summary.ssim_mean, 0.5);
    EXPECT_FALSE(result.timeseries.empty());
  }
}

TEST(SessionTest, DeterministicAcrossRuns) {
  const SessionResult a = RunSession(BaseConfig(Scheme::kAdaptive));
  const SessionResult b = RunSession(BaseConfig(Scheme::kAdaptive));
  EXPECT_EQ(a.summary.latency_mean_ms, b.summary.latency_mean_ms);
  EXPECT_EQ(a.summary.ssim_mean, b.summary.ssim_mean);
  EXPECT_EQ(a.summary.frames_delivered, b.summary.frames_delivered);
  ASSERT_EQ(a.frames.size(), b.frames.size());
  for (size_t i = 0; i < a.frames.size(); i += 37) {
    EXPECT_EQ(a.frames[i].size, b.frames[i].size);
    EXPECT_EQ(a.frames[i].qp, b.frames[i].qp);
  }
}

TEST(SessionTest, DifferentSeedsDiffer) {
  SessionConfig config = BaseConfig(Scheme::kAdaptive);
  const SessionResult a = RunSession(config);
  config.seed = 43;
  const SessionResult b = RunSession(config);
  EXPECT_NE(a.summary.latency_mean_ms, b.summary.latency_mean_ms);
}

TEST(SessionTest, AdaptiveBeatsBaselineLatencyOnDrop) {
  const SessionResult baseline = RunSession(BaseConfig(Scheme::kX264Abr));
  const SessionResult adaptive = RunSession(BaseConfig(Scheme::kAdaptive));
  EXPECT_LT(adaptive.summary.latency_mean_ms,
            baseline.summary.latency_mean_ms * 0.7);
  EXPECT_LT(adaptive.summary.latency_p95_ms,
            baseline.summary.latency_p95_ms * 0.7);
  // Quality must not be sacrificed for it.
  EXPECT_GT(adaptive.summary.encoded_ssim_mean,
            baseline.summary.encoded_ssim_mean * 0.99);
}

TEST(SessionTest, CbrSitsBetweenAbrAndAdaptive) {
  const double abr =
      RunSession(BaseConfig(Scheme::kX264Abr)).summary.latency_p95_ms;
  const double cbr =
      RunSession(BaseConfig(Scheme::kX264Cbr)).summary.latency_p95_ms;
  const double adaptive =
      RunSession(BaseConfig(Scheme::kAdaptive)).summary.latency_p95_ms;
  EXPECT_LT(cbr, abr);
  EXPECT_LT(adaptive, cbr);
}

TEST(SessionTest, AdaptiveAvoidsNetworkLossOnStepDrop) {
  const SessionResult adaptive = RunSession(BaseConfig(Scheme::kAdaptive));
  EXPECT_EQ(adaptive.summary.frames_lost_network, 0);
  EXPECT_EQ(adaptive.link_stats.packets_dropped, 0);
}

TEST(SessionTest, LinkConservation) {
  const SessionResult result = RunSession(BaseConfig(Scheme::kX264Abr));
  // Every frame has a terminal or in-flight fate; no frame is double
  // counted.
  const auto& s = result.summary;
  const int64_t accounted = s.frames_delivered + s.frames_skipped +
                            s.frames_dropped_sender + s.frames_lost_network;
  EXPECT_LE(accounted, s.frames_captured);
  // In-flight tail is small (frames captured in the last moments).
  EXPECT_GE(accounted, s.frames_captured - 40);
}

TEST(SessionTest, SteadyLinkKeepsLatencyLow) {
  SessionConfig config = BaseConfig(Scheme::kAdaptive);
  config.link.trace =
      net::CapacityTrace::Constant(DataRate::KilobitsPerSec(2500));
  const SessionResult result = RunSession(config);
  EXPECT_LT(result.summary.latency_p95_ms, 150.0);
  EXPECT_EQ(result.summary.frames_lost_network, 0);
}

TEST(SessionTest, BitrateBoundedByCapacity) {
  for (Scheme scheme : {Scheme::kX264Abr, Scheme::kAdaptive}) {
    const SessionResult result = RunSession(BaseConfig(scheme));
    // Average capacity: 8 s at 2500 + 12 s at 1000 = 1600 kbps.
    EXPECT_LT(result.summary.encoded_bitrate_kbps, 1800.0) << ToString(scheme);
    EXPECT_GT(result.summary.encoded_bitrate_kbps, 400.0) << ToString(scheme);
  }
}

TEST(SessionTest, OracleAtLeastAsGoodAsGccAdaptive) {
  const SessionResult gcc = RunSession(BaseConfig(Scheme::kAdaptive));
  const SessionResult oracle =
      RunSession(BaseConfig(Scheme::kAdaptiveOracle));
  EXPECT_LT(oracle.summary.latency_p95_ms,
            gcc.summary.latency_p95_ms * 1.25);
}

TEST(SessionTest, TimeseriesCoversSession) {
  const SessionResult result = RunSession(BaseConfig(Scheme::kAdaptive));
  // 20 s at 100 ms sampling.
  EXPECT_NEAR(static_cast<double>(result.timeseries.size()), 200.0, 3.0);
  EXPECT_EQ(result.timeseries.front().capacity_kbps, 2500.0);
  EXPECT_EQ(result.timeseries.back().capacity_kbps, 1000.0);
}

TEST(SessionTest, DegradationReducesResolutionUnderStarvation) {
  SessionConfig config = BaseConfig(Scheme::kAdaptive);
  config.enable_degradation = true;
  config.duration = TimeDelta::Seconds(25);
  // Brutal drop to 150 kbps: 720p is unsustainable; the controller must
  // step the resolution down, which shows up as smaller frames.
  config.link.trace = net::CapacityTrace::StepDrop(
      DataRate::KilobitsPerSec(2500), DataRate::KilobitsPerSec(150),
      Timestamp::Seconds(5));
  const SessionResult result = RunSession(config);
  // Mean QP without degradation would pin at ~51; with it, the QP relaxes.
  EXPECT_LT(result.summary.qp_mean, 49.0);
}

TEST(SessionTest, RtxRecoversFromFeedbackPathLoss) {
  SessionConfig config = BaseConfig(Scheme::kAdaptive);
  config.feedback_loss = 0.05;  // lossy reverse path
  const SessionResult result = RunSession(config);
  EXPECT_GT(result.summary.frames_delivered, 500);
}

TEST(SessionTest, DisableRtxStillRuns) {
  SessionConfig config = BaseConfig(Scheme::kX264Abr);
  config.enable_rtx = false;
  const SessionResult result = RunSession(config);
  EXPECT_GT(result.summary.frames_delivered, 300);
}

}  // namespace
}  // namespace rave::rtc
