#include "core/salsify_rate_control.h"

#include <gtest/gtest.h>

#include "rtc/session.h"

namespace rave::core {
namespace {

video::RawFrame MakeFrame() {
  video::RawFrame f;
  f.spatial_complexity = 1.0;
  f.temporal_complexity = 0.5;
  return f;
}

NetworkObservation MakeObs(Timestamp at, int64_t target_kbps,
                           int64_t pacer_bits = 0) {
  NetworkObservation obs;
  obs.at = at;
  obs.target = DataRate::KilobitsPerSec(target_kbps);
  obs.acked_rate = DataRate::KilobitsPerSec(target_kbps);
  obs.rtt = TimeDelta::Millis(50);
  obs.pacer_queue = DataSize::Bits(pacer_bits);
  return obs;
}

SalsifyConfig DefaultConfig() {
  SalsifyConfig config;
  config.fps = 30.0;
  config.initial_target = DataRate::KilobitsPerSec(1500);
  return config;
}

TEST(SalsifyTest, BudgetIsCapacityMinusBacklog) {
  SalsifyRateControl rc(DefaultConfig());
  rc.OnNetworkUpdate(MakeObs(Timestamp::Seconds(1), 1500, /*pacer=*/20'000));
  const codec::FrameGuidance g =
      rc.PlanFrame(MakeFrame(), codec::FrameType::kDelta, Timestamp::Seconds(1));
  // 50'000 - 20'000 backlog = 30'000 bits, cap slack 1.05.
  EXPECT_FALSE(g.skip);
  ASSERT_TRUE(g.max_size.IsFinite());
  EXPECT_NEAR(static_cast<double>(g.max_size.bits()), 30'000 * 1.05, 500.0);
}

TEST(SalsifyTest, PausesAboveThreshold) {
  SalsifyRateControl rc(DefaultConfig());
  // 150 ms of backlog at 1500 kbps = 225'000 bits (> 100 ms threshold).
  rc.OnNetworkUpdate(MakeObs(Timestamp::Seconds(1), 1500, 225'000));
  const codec::FrameGuidance g =
      rc.PlanFrame(MakeFrame(), codec::FrameType::kDelta, Timestamp::Seconds(1));
  EXPECT_TRUE(g.skip);
}

TEST(SalsifyTest, PauseBoundedByConsecutiveSkips) {
  SalsifyRateControl rc(DefaultConfig());
  rc.OnNetworkUpdate(MakeObs(Timestamp::Seconds(1), 1500, 400'000));
  int skips = 0;
  for (int i = 0; i < 6; ++i) {
    const codec::FrameGuidance g = rc.PlanFrame(
        MakeFrame(), codec::FrameType::kDelta, Timestamp::Seconds(1));
    if (!g.skip) break;
    codec::FrameOutcome outcome;
    outcome.skipped = true;
    rc.OnFrameEncoded(outcome, Timestamp::Seconds(1));
    ++skips;
  }
  EXPECT_EQ(skips, 3);  // max_consecutive_skips
}

TEST(SalsifyTest, KeyframesNeverPaused) {
  SalsifyRateControl rc(DefaultConfig());
  rc.OnNetworkUpdate(MakeObs(Timestamp::Seconds(1), 1500, 400'000));
  const codec::FrameGuidance g =
      rc.PlanFrame(MakeFrame(), codec::FrameType::kKey, Timestamp::Seconds(1));
  EXPECT_FALSE(g.skip);
}

TEST(SalsifyTest, NoSmoothingQpTracksBudgetInstantly) {
  SalsifyRateControl rc(DefaultConfig());
  rc.OnNetworkUpdate(MakeObs(Timestamp::Seconds(1), 2000));
  const double qp_high_budget =
      rc.PlanFrame(MakeFrame(), codec::FrameType::kDelta, Timestamp::Seconds(1))
          .qp;
  rc.OnNetworkUpdate(MakeObs(Timestamp::Millis(1033), 500));
  const double qp_low_budget =
      rc.PlanFrame(MakeFrame(), codec::FrameType::kDelta,
                   Timestamp::Millis(1033))
          .qp;
  // A 4x budget cut moves QP by ~12 in a single frame — no clamping.
  EXPECT_GT(qp_low_budget, qp_high_budget + 8.0);
}

TEST(SalsifyTest, EndToEndLatencyComparableToAdaptive) {
  // Integration: Salsify's latency on a drop is in the same class as the
  // adaptive scheme (both are per-frame schemes) and far below the baseline.
  rtc::SessionConfig config;
  config.duration = TimeDelta::Seconds(20);
  config.initial_rate = DataRate::KilobitsPerSec(2100);
  config.link.trace = net::CapacityTrace::StepDrop(
      DataRate::KilobitsPerSec(2500), DataRate::KilobitsPerSec(1000),
      Timestamp::Seconds(8));

  config.scheme = rtc::Scheme::kSalsify;
  const auto salsify = rtc::RunSession(config);
  config.scheme = rtc::Scheme::kAdaptive;
  const auto adaptive = rtc::RunSession(config);
  config.scheme = rtc::Scheme::kX264Abr;
  const auto baseline = rtc::RunSession(config);

  EXPECT_LT(salsify.summary.latency_p95_ms,
            baseline.summary.latency_p95_ms * 0.5);
  EXPECT_LT(salsify.summary.latency_p95_ms,
            adaptive.summary.latency_p95_ms * 2.0);
  // The paper's hysteresis buys quality stability over pure Salsify-style
  // matching (at minimum, it must not be worse).
  EXPECT_GE(adaptive.summary.encoded_ssim_mean,
            salsify.summary.encoded_ssim_mean - 0.002);
}

TEST(SalsifyTest, Name) {
  SalsifyRateControl rc(DefaultConfig());
  EXPECT_EQ(rc.name(), "salsify");
}

}  // namespace
}  // namespace rave::core
