// ResultCache correctness: blob codec round-trips bit-exactly, every flavor
// of disk corruption degrades to a recompute (never a crash, never a wrong
// result), and concurrent writers sharing one cache directory stay safe.
#include "runner/result_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "fault/fault_plan.h"
#include "runner/session_key.h"

namespace rave {
namespace {

namespace fs = std::filesystem;

rtc::SessionConfig SmallConfig(uint64_t seed = 3,
                               rtc::Scheme scheme = rtc::Scheme::kAdaptive) {
  auto config = bench::DefaultConfig(scheme, bench::DropTrace(0.5),
                                     video::ContentClass::kTalkingHead,
                                     TimeDelta::Seconds(4), seed);
  return config;
}

/// Fresh empty scratch directory under the gtest temp dir.
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/rave_cache_" + name;
  fs::remove_all(dir);
  return dir;
}

void ExpectBitIdentical(const rtc::SessionResult& a,
                        const rtc::SessionResult& b) {
  // The codec serializes every field bit-exactly, so encoded equality is
  // full-result equality — and it is exactly what the disk tier preserves.
  EXPECT_EQ(runner::ResultCache::EncodeResult(a),
            runner::ResultCache::EncodeResult(b));
}

TEST(ResultCacheCodecTest, RoundTripsARealSessionBitExactly) {
  auto config = SmallConfig();
  config.enable_fec = true;  // exercise protection/FEC summary fields
  config.faults =
      fault::FaultPlan().Outage(Timestamp::Seconds(2), TimeDelta::Millis(500));
  const rtc::SessionResult original = rtc::RunSession(config);
  ASSERT_FALSE(original.frames.empty());
  ASSERT_FALSE(original.timeseries.empty());

  const std::vector<uint8_t> payload =
      runner::ResultCache::EncodeResult(original);
  rtc::SessionResult decoded;
  ASSERT_TRUE(runner::ResultCache::DecodeResult(payload, &decoded));

  EXPECT_EQ(decoded.scheme_name, original.scheme_name);
  EXPECT_EQ(decoded.events_executed, original.events_executed);
  EXPECT_EQ(decoded.frames.size(), original.frames.size());
  EXPECT_EQ(decoded.timeseries.size(), original.timeseries.size());
  EXPECT_EQ(decoded.summary.frames_captured, original.summary.frames_captured);
  EXPECT_EQ(decoded.summary.latency_p95_ms, original.summary.latency_p95_ms);
  EXPECT_EQ(decoded.summary.encoded_ssim_mean,
            original.summary.encoded_ssim_mean);
  EXPECT_EQ(decoded.link_stats.packets_delivered,
            original.link_stats.packets_delivered);
  EXPECT_EQ(decoded.breaker_stats.opens, original.breaker_stats.opens);
  for (size_t i = 0; i < original.frames.size(); ++i) {
    ASSERT_EQ(decoded.frames[i].frame_id, original.frames[i].frame_id);
    ASSERT_EQ(decoded.frames[i].fate, original.frames[i].fate);
    ASSERT_EQ(decoded.frames[i].ssim, original.frames[i].ssim);
    ASSERT_EQ(decoded.frames[i].complete_time,
              original.frames[i].complete_time);
  }
  // Re-encoding the decoded result must reproduce the payload byte for byte.
  EXPECT_EQ(runner::ResultCache::EncodeResult(decoded), payload);
}

TEST(ResultCacheCodecTest, DecodeRejectsTruncationAtEveryLength) {
  const rtc::SessionResult result = rtc::RunSession(SmallConfig());
  const std::vector<uint8_t> payload =
      runner::ResultCache::EncodeResult(result);
  rtc::SessionResult out;
  // Every strict prefix must be rejected cleanly (no crash, no partial OK).
  // Step through lengths to keep the test fast on big payloads.
  for (size_t len = 0; len < payload.size();
       len += (payload.size() / 257) + 1) {
    const std::vector<uint8_t> truncated(payload.begin(),
                                         payload.begin() + len);
    EXPECT_FALSE(runner::ResultCache::DecodeResult(truncated, &out))
        << "accepted a " << len << "-byte prefix";
  }
  // Trailing garbage is rejected too (AtEnd check).
  std::vector<uint8_t> padded = payload;
  padded.push_back(0);
  EXPECT_FALSE(runner::ResultCache::DecodeResult(padded, &out));
}

TEST(ResultCacheTest, MemoryTierHitsWithoutDisk) {
  runner::ResultCache cache;  // no dir: memory tier only
  const auto config = SmallConfig();
  const runner::SessionKey key = runner::ComputeSessionKey(config);

  int computes = 0;
  auto compute = [&] {
    ++computes;
    return rtc::RunSession(config);
  };
  const auto first = cache.GetOrCompute(key, compute);
  const auto second = cache.GetOrCompute(key, compute);
  EXPECT_EQ(computes, 1);
  ExpectBitIdentical(first, second);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.computes, 1u);
  EXPECT_EQ(stats.memory_hits, 1u);
  EXPECT_EQ(stats.disk_hits, 0u);
  EXPECT_EQ(stats.stores, 0u);  // no disk tier configured
}

TEST(ResultCacheTest, DiskTierSurvivesProcessRestart) {
  const std::string dir = FreshDir("restart");
  const auto config = SmallConfig();
  const runner::SessionKey key = runner::ComputeSessionKey(config);
  auto compute = [&] { return rtc::RunSession(config); };

  rtc::SessionResult first;
  {
    runner::ResultCache cache({dir});
    first = cache.GetOrCompute(key, compute);
    EXPECT_EQ(cache.stats().computes, 1u);
    EXPECT_EQ(cache.stats().stores, 1u);
  }
  {
    // A new instance stands in for a new process sharing the directory.
    runner::ResultCache cache({dir});
    const auto second = cache.GetOrCompute(key, [&]() -> rtc::SessionResult {
      ADD_FAILURE() << "disk hit expected; compute ran";
      return rtc::RunSession(config);
    });
    ExpectBitIdentical(first, second);
    EXPECT_EQ(cache.stats().disk_hits, 1u);
    EXPECT_EQ(cache.stats().computes, 0u);
    EXPECT_GT(cache.stats().saved_compute_us, 0u);
  }
  fs::remove_all(dir);
}

// Corruption matrix: flip/truncate/garble the one blob in the directory; a
// fresh cache must recompute (miss), count the blob as corrupt, and heal the
// file by overwriting it.
TEST(ResultCacheTest, CorruptedBlobsAreMissesNotCrashes) {
  const std::string dir = FreshDir("corrupt");
  const auto config = SmallConfig();
  const runner::SessionKey key = runner::ComputeSessionKey(config);
  auto compute = [&] { return rtc::RunSession(config); };

  rtc::SessionResult reference;
  {
    runner::ResultCache cache({dir});
    reference = cache.GetOrCompute(key, compute);
  }
  const std::string blob = dir + "/" + key.ToHex() + ".rrc";
  ASSERT_TRUE(fs::exists(blob));
  std::vector<char> pristine;
  {
    std::ifstream in(blob, std::ios::binary);
    pristine.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_GT(pristine.size(), 64u);

  struct Corruption {
    const char* name;
    size_t resize;   // 0 = keep size
    size_t flip_at;  // byte to XOR when resize == 0
  };
  const Corruption corruptions[] = {
      {"bad magic", 0, 0},
      {"bad header", 0, 24},
      {"bad payload", 0, pristine.size() - 9},
      {"truncated header", 16, 0},
      {"truncated payload", pristine.size() / 2, 0},
      {"empty file", 1, 0},
  };
  for (const Corruption& c : corruptions) {
    SCOPED_TRACE(c.name);
    std::vector<char> bytes = pristine;
    if (c.resize > 0) {
      bytes.resize(c.resize);
    } else {
      bytes[c.flip_at] = static_cast<char>(bytes[c.flip_at] ^ 0x5a);
    }
    {
      std::ofstream out(blob, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    runner::ResultCache cache({dir});
    const auto recomputed = cache.GetOrCompute(key, compute);
    ExpectBitIdentical(reference, recomputed);
    EXPECT_EQ(cache.stats().corrupt, 1u);
    EXPECT_EQ(cache.stats().computes, 1u);
    EXPECT_EQ(cache.stats().stores, 1u);  // blob healed
  }

  // After the last heal the blob must be valid again.
  runner::ResultCache cache({dir});
  cache.GetOrCompute(key, compute);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  fs::remove_all(dir);
}

TEST(ResultCacheTest, UnwritableDirDegradesToMemoryTier) {
  // A path under a regular file can never be created.
  const std::string file = ::testing::TempDir() + "/rave_cache_blocker";
  { std::ofstream out(file); }
  runner::ResultCache cache({file + "/sub"});
  const auto config = SmallConfig();
  const runner::SessionKey key = runner::ComputeSessionKey(config);
  auto compute = [&] { return rtc::RunSession(config); };
  const auto first = cache.GetOrCompute(key, compute);
  const auto second = cache.GetOrCompute(key, compute);
  ExpectBitIdentical(first, second);
  EXPECT_EQ(cache.stats().computes, 1u);
  EXPECT_EQ(cache.stats().memory_hits, 1u);
  fs::remove(file);
}

TEST(ResultCacheTest, InflightDedupUnderConcurrency) {
  runner::ResultCache cache;
  const auto config = SmallConfig();
  const runner::SessionKey key = runner::ComputeSessionKey(config);

  std::vector<std::thread> threads;
  std::vector<rtc::SessionResult> results(8);
  for (size_t i = 0; i < results.size(); ++i) {
    threads.emplace_back([&, i] {
      results[i] =
          cache.GetOrCompute(key, [&] { return rtc::RunSession(config); });
    });
  }
  for (auto& t : threads) t.join();

  // Exactly one compute; everyone else waited on the in-flight future.
  EXPECT_EQ(cache.stats().computes, 1u);
  EXPECT_EQ(cache.stats().memory_hits, results.size() - 1);
  for (size_t i = 1; i < results.size(); ++i) {
    ExpectBitIdentical(results[0], results[i]);
  }
}

// Two cache instances (standing in for two processes) hammer one directory
// with overlapping key sets. Atomic temp+rename writes mean every read sees
// either a whole valid blob or nothing.
TEST(ResultCacheTest, ConcurrentWritersToOneDirectory) {
  const std::string dir = FreshDir("writers");
  runner::ResultCache cache_a({dir});
  runner::ResultCache cache_b({dir});

  const uint64_t seeds[] = {11, 12, 13, 14};
  auto work = [&](runner::ResultCache& cache,
                  std::vector<rtc::SessionResult>* out) {
    for (uint64_t seed : seeds) {
      const auto config = SmallConfig(seed);
      out->push_back(cache.GetOrCompute(runner::ComputeSessionKey(config),
                                        [&] { return rtc::RunSession(config); }));
    }
  };
  std::vector<rtc::SessionResult> results_a;
  std::vector<rtc::SessionResult> results_b;
  std::thread ta([&] { work(cache_a, &results_a); });
  std::thread tb([&] { work(cache_b, &results_b); });
  ta.join();
  tb.join();

  ASSERT_EQ(results_a.size(), std::size(seeds));
  ASSERT_EQ(results_b.size(), std::size(seeds));
  for (size_t i = 0; i < std::size(seeds); ++i) {
    ExpectBitIdentical(results_a[i], results_b[i]);
  }
  // No blob was ever rejected: concurrent stores are atomic, not corrupting.
  EXPECT_EQ(cache_a.stats().corrupt, 0u);
  EXPECT_EQ(cache_b.stats().corrupt, 0u);
  // Every key has exactly one blob (plus no leftover temp files).
  size_t blobs = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().extension(), ".rrc") << entry.path();
    ++blobs;
  }
  EXPECT_EQ(blobs, std::size(seeds));
  fs::remove_all(dir);
}

TEST(ResultCacheTest, EvictionKeepsDirectoryUnderCap) {
  const std::string dir = FreshDir("evict");
  runner::ResultCache::Options options;
  options.dir = dir;
  options.max_disk_bytes = 1;  // every store must evict down to one blob
  runner::ResultCache cache(options);
  for (uint64_t seed = 21; seed < 25; ++seed) {
    const auto config = SmallConfig(seed);
    cache.GetOrCompute(runner::ComputeSessionKey(config),
                       [&] { return rtc::RunSession(config); });
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  size_t blobs = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++blobs;
  }
  EXPECT_LE(blobs, 1u);
  fs::remove_all(dir);
}

TEST(ResultCacheTest, EnvHelpersDefaultWhenUnset) {
  // Only exercise the no-env path (tests must not mutate the environment of
  // the whole binary): unset means "no dir" and the default size cap.
  if (::getenv("RAVE_CACHE_DIR") == nullptr) {
    EXPECT_FALSE(runner::ResultCache::DirFromEnv().has_value());
  }
  if (::getenv("RAVE_CACHE_MAX_MB") == nullptr) {
    EXPECT_EQ(runner::ResultCache::MaxDiskBytesFromEnv(),
              runner::ResultCache::Options{}.max_disk_bytes);
  }
}

}  // namespace
}  // namespace rave
