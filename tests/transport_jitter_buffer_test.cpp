#include "transport/jitter_buffer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "rtc/session.h"

namespace rave::transport {
namespace {

TEST(JitterBufferTest, StartsAtMinDelay) {
  JitterBuffer jb;
  EXPECT_EQ(jb.current_delay(), TimeDelta::Millis(10));
}

TEST(JitterBufferTest, SteadyDelayConvergesToTightBuffer) {
  JitterBuffer jb;
  // Perfectly constant 60 ms network delay: variance -> 0, so the target
  // approaches the mean (clamped to >= min_delay ... just above 60 ms).
  for (int i = 0; i < 2000; ++i) {
    const Timestamp capture = Timestamp::Millis(33 * i);
    jb.OnFrameComplete(capture, capture + TimeDelta::Millis(60));
  }
  EXPECT_NEAR(jb.current_delay().ms_float(), 60.0, 5.0);
}

TEST(JitterBufferTest, JitteryDelayKeepsHeadroom) {
  JitterBuffer jb;
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const Timestamp capture = Timestamp::Millis(33 * i);
    const double delay_ms = 60.0 + rng.Gaussian(0.0, 10.0);
    jb.OnFrameComplete(capture,
                       capture + TimeDelta::SecondsF(delay_ms / 1e3));
  }
  // Target should hold ~mean + 4 sigma.
  EXPECT_GT(jb.current_delay().ms_float(), 85.0);
  EXPECT_LT(jb.current_delay().ms_float(), 130.0);
  // With 4-sigma headroom, late frames are rare.
  EXPECT_LT(static_cast<double>(jb.late_frames()) /
                static_cast<double>(jb.frames()),
            0.02);
}

TEST(JitterBufferTest, LateFrameRendersOnArrivalAndGrowsBuffer) {
  JitterBuffer jb;
  for (int i = 0; i < 200; ++i) {
    const Timestamp capture = Timestamp::Millis(33 * i);
    jb.OnFrameComplete(capture, capture + TimeDelta::Millis(40));
  }
  const TimeDelta before = jb.current_delay();
  // One frame delayed far beyond the buffer.
  const Timestamp capture = Timestamp::Millis(33 * 200);
  const PlayoutDecision d =
      jb.OnFrameComplete(capture, capture + TimeDelta::Millis(400));
  EXPECT_TRUE(d.late);
  EXPECT_EQ(d.render_time, capture + TimeDelta::Millis(400));
  EXPECT_GT(jb.current_delay(), before);
}

TEST(JitterBufferTest, RendersNeverGoBackwards) {
  JitterBuffer jb;
  Timestamp last = Timestamp::MinusInfinity();
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const Timestamp capture = Timestamp::Millis(33 * i);
    const double delay_ms = 40.0 + rng.Uniform(0.0, 80.0);
    const PlayoutDecision d = jb.OnFrameComplete(
        capture, capture + TimeDelta::SecondsF(delay_ms / 1e3));
    EXPECT_GT(d.render_time, last);
    last = d.render_time;
  }
}

TEST(JitterBufferTest, DelayClampedToMax) {
  JitterBuffer::Config config;
  config.max_delay = TimeDelta::Millis(200);
  JitterBuffer jb(config);
  for (int i = 0; i < 100; ++i) {
    const Timestamp capture = Timestamp::Millis(33 * i);
    jb.OnFrameComplete(capture, capture + TimeDelta::Seconds(1));
  }
  EXPECT_LE(jb.current_delay(), TimeDelta::Millis(200));
}

TEST(JitterBufferTest, RenderTimesMonotoneUnderBurstyCompletions) {
  // Duplication/reordering faults can complete several frames at the same
  // instant (an RTX burst after an outage). Scheduled render times must
  // still be usable: never before the completion the frame arrived at.
  JitterBuffer jb;
  Timestamp last_render = Timestamp::MinusInfinity();
  for (int i = 0; i < 20; ++i) {
    const Timestamp capture = Timestamp::Millis(33 * i);
    // Frames 5..9 all complete in the same burst instant; later frames
    // complete normally afterwards (fed in completion order).
    Timestamp complete = capture + TimeDelta::Millis(60);
    if (i >= 5 && i < 10) complete = Timestamp::Millis(400);
    if (i >= 10) complete = std::max(complete, Timestamp::Millis(401));
    const PlayoutDecision d = jb.OnFrameComplete(capture, complete);
    EXPECT_GE(d.render_time, complete);
    EXPECT_GT(d.render_time, last_render);  // frames display in order
    last_render = d.render_time;
  }
  EXPECT_EQ(jb.frames(), 20);
}

TEST(JitterBufferIntegrationTest, RenderLatencyTracksNetworkStability) {
  // Schemes with stable network delay earn a small playout buffer; the
  // baseline's delay swings force a large one. Render latency amplifies the
  // paper's effect.
  rtc::SessionConfig config;
  config.duration = TimeDelta::Seconds(30);
  config.initial_rate = DataRate::KilobitsPerSec(2100);
  config.link.trace = net::CapacityTrace::StepDrop(
      DataRate::KilobitsPerSec(2500), DataRate::KilobitsPerSec(1000),
      Timestamp::Seconds(10));

  config.scheme = rtc::Scheme::kAdaptive;
  const auto adaptive = rtc::RunSession(config);
  config.scheme = rtc::Scheme::kX264Abr;
  const auto baseline = rtc::RunSession(config);

  // Render latency includes the playout buffer, so it exceeds network
  // latency for both.
  EXPECT_GT(adaptive.summary.render_latency_mean_ms,
            adaptive.summary.latency_mean_ms);
  EXPECT_GT(baseline.summary.render_latency_mean_ms,
            baseline.summary.latency_mean_ms);
  // And the adaptive scheme's render latency is far lower.
  EXPECT_LT(adaptive.summary.render_latency_mean_ms,
            baseline.summary.render_latency_mean_ms * 0.6);
}

}  // namespace
}  // namespace rave::transport
