#include "net/link.h"

#include <gtest/gtest.h>

#include <vector>

namespace rave::net {
namespace {

struct Delivery {
  Packet packet;
  Timestamp at;
};

struct LinkFixture {
  explicit LinkFixture(Link::Config config) {
    link = std::make_unique<Link>(loop, std::move(config),
                                  [this](const Packet& p, Timestamp t) {
                                    deliveries.push_back({p, t});
                                  });
  }
  EventLoop loop;
  std::vector<Delivery> deliveries;
  std::unique_ptr<Link> link;
};

Packet MakePacket(int64_t seq, int64_t bits) {
  Packet p;
  p.seq = seq;
  p.size = DataSize::Bits(bits);
  return p;
}

TEST(LinkTest, SerializationPlusPropagationExact) {
  Link::Config config;
  config.trace = CapacityTrace::Constant(DataRate::KilobitsPerSec(1000));
  config.propagation = TimeDelta::Millis(25);
  LinkFixture fx(std::move(config));
  // 10'000 bits at 1 Mbps = 10 ms serialization + 25 ms propagation.
  fx.link->Send(MakePacket(0, 10'000));
  fx.loop.RunAll();
  ASSERT_EQ(fx.deliveries.size(), 1u);
  EXPECT_EQ(fx.deliveries[0].at, Timestamp::Millis(35));
}

TEST(LinkTest, BackToBackPacketsQueueBehindEachOther) {
  Link::Config config;
  config.trace = CapacityTrace::Constant(DataRate::KilobitsPerSec(1000));
  config.propagation = TimeDelta::Zero();
  LinkFixture fx(std::move(config));
  fx.link->Send(MakePacket(0, 10'000));
  fx.link->Send(MakePacket(1, 10'000));
  fx.link->Send(MakePacket(2, 10'000));
  fx.loop.RunAll();
  ASSERT_EQ(fx.deliveries.size(), 3u);
  EXPECT_EQ(fx.deliveries[0].at, Timestamp::Millis(10));
  EXPECT_EQ(fx.deliveries[1].at, Timestamp::Millis(20));
  EXPECT_EQ(fx.deliveries[2].at, Timestamp::Millis(30));
  // FIFO order.
  EXPECT_EQ(fx.deliveries[0].packet.seq, 0);
  EXPECT_EQ(fx.deliveries[2].packet.seq, 2);
}

TEST(LinkTest, RateChangeMidPacketExactCompletion) {
  // 20'000 bits; 10 ms at 1 Mbps sends 10'000 bits, then the rate halves:
  // remaining 10'000 bits at 500 kbps = 20 ms. Total 30 ms.
  Link::Config config;
  config.trace =
      CapacityTrace::StepDrop(DataRate::KilobitsPerSec(1000),
                              DataRate::KilobitsPerSec(500),
                              Timestamp::Millis(10));
  config.propagation = TimeDelta::Zero();
  LinkFixture fx(std::move(config));
  fx.link->Send(MakePacket(0, 20'000));
  fx.loop.RunAll();
  ASSERT_EQ(fx.deliveries.size(), 1u);
  EXPECT_EQ(fx.deliveries[0].at, Timestamp::Millis(30));
}

TEST(LinkTest, RateIncreaseMidPacket) {
  // 20'000 bits: 10ms at 500kbps sends 5'000; remaining 15'000 at 2 Mbps =
  // 7.5 ms. Total 17.5 ms.
  Link::Config config;
  config.trace =
      CapacityTrace::StepDrop(DataRate::KilobitsPerSec(500),
                              DataRate::MegabitsPerSecF(2.0),
                              Timestamp::Millis(10));
  config.propagation = TimeDelta::Zero();
  LinkFixture fx(std::move(config));
  fx.link->Send(MakePacket(0, 20'000));
  fx.loop.RunAll();
  ASSERT_EQ(fx.deliveries.size(), 1u);
  EXPECT_EQ(fx.deliveries[0].at.us(), 17'500);
}

TEST(LinkTest, DroptailDropsWhenQueueFull) {
  Link::Config config;
  config.trace = CapacityTrace::Constant(DataRate::KilobitsPerSec(100));
  config.queue_capacity = DataSize::Bits(25'000);
  LinkFixture fx(std::move(config));
  // First packet starts transmitting (leaves the queue); then fill the
  // queue: 2 x 12'000 fits (24'000 <= 25'000), the next is dropped.
  for (int i = 0; i < 4; ++i) fx.link->Send(MakePacket(i, 12'000));
  EXPECT_EQ(fx.link->stats().packets_dropped, 1);
  fx.loop.RunAll();
  EXPECT_EQ(fx.deliveries.size(), 3u);
  EXPECT_EQ(fx.link->stats().packets_delivered, 3);
}

TEST(LinkTest, ConservationDeliveredPlusDroppedEqualsSent) {
  Link::Config config;
  config.trace = CapacityTrace::Constant(DataRate::KilobitsPerSec(500));
  config.queue_capacity = DataSize::Bits(50'000);
  LinkFixture fx(std::move(config));
  const int sent = 200;
  for (int i = 0; i < sent; ++i) fx.link->Send(MakePacket(i, 9'600));
  fx.loop.RunAll();
  EXPECT_EQ(fx.link->stats().packets_delivered +
                fx.link->stats().packets_dropped,
            sent);
  EXPECT_EQ(static_cast<int>(fx.deliveries.size()),
            static_cast<int>(fx.link->stats().packets_delivered));
}

TEST(LinkTest, BacklogAndQueueDelayTrackLoad) {
  Link::Config config;
  config.trace = CapacityTrace::Constant(DataRate::KilobitsPerSec(1000));
  config.queue_capacity = DataSize::Bits(1'000'000);
  LinkFixture fx(std::move(config));
  for (int i = 0; i < 10; ++i) fx.link->Send(MakePacket(i, 10'000));
  // 100'000 bits at 1 Mbps = 100 ms backlog.
  EXPECT_NEAR(fx.link->QueueDelay().ms_float(), 100.0, 1.0);
  EXPECT_NEAR(static_cast<double>(fx.link->backlog().bits()), 100'000, 100);
  fx.loop.RunFor(TimeDelta::Millis(50));
  EXPECT_NEAR(fx.link->QueueDelay().ms_float(), 50.0, 1.0);
  fx.loop.RunAll();
  EXPECT_TRUE(fx.link->backlog().IsZero());
}

TEST(LinkTest, SendTimeStampedIfUnset) {
  Link::Config config;
  LinkFixture fx(std::move(config));
  fx.loop.RunFor(TimeDelta::Millis(10));
  fx.link->Send(MakePacket(0, 8'000));
  fx.loop.RunAll();
  ASSERT_EQ(fx.deliveries.size(), 1u);
  EXPECT_EQ(fx.deliveries[0].packet.send_time, Timestamp::Millis(10));
}

TEST(DelayPipeTest, DeliversAfterDelay) {
  EventLoop loop;
  DelayPipe pipe(loop, TimeDelta::Millis(40));
  Timestamp delivered_at = Timestamp::MinusInfinity();
  pipe.Send([&] { delivered_at = loop.now(); });
  loop.RunAll();
  EXPECT_EQ(delivered_at, Timestamp::Millis(40));
  EXPECT_EQ(pipe.delivered(), 1);
}

TEST(DelayPipeTest, LossDropsDeterministically) {
  EventLoop loop;
  DelayPipe pipe(loop, TimeDelta::Millis(10), /*loss_rate=*/0.5,
                 TimeDelta::Zero(), /*seed=*/3);
  int delivered = 0;
  for (int i = 0; i < 1000; ++i) {
    pipe.Send([&] { ++delivered; });
  }
  loop.RunAll();
  EXPECT_EQ(delivered, static_cast<int>(pipe.delivered()));
  EXPECT_NEAR(delivered, 500, 60);
  EXPECT_EQ(pipe.delivered() + pipe.lost(), 1000);
}

TEST(DelayPipeTest, JitterNeverReorders) {
  EventLoop loop;
  DelayPipe pipe(loop, TimeDelta::Millis(20), 0.0, TimeDelta::Millis(15),
                 /*seed=*/5);
  std::vector<int> order;
  for (int i = 0; i < 200; ++i) {
    pipe.Send([&order, i] { order.push_back(i); });
    loop.RunFor(TimeDelta::Millis(1));
  }
  loop.RunAll();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

}  // namespace
}  // namespace rave::net
