// Tests for the x264-style baseline rate controls: long-run convergence to
// the target bitrate and — the property the paper is built on — their slow
// reaction to target changes.
#include <gtest/gtest.h>

#include "codec/abr_rate_control.h"
#include "codec/cbr_rate_control.h"
#include "codec/encoder.h"
#include "video/video_source.h"

namespace rave::codec {
namespace {

// Drives an encoder with a synthetic source at a fixed frame cadence and
// returns the achieved bitrate over [from, to).
struct DriveResult {
  double bitrate_kbps = 0.0;
  double mean_qp = 0.0;
  double max_qp_step = 0.0;
};

template <typename MakeRc>
DriveResult Drive(MakeRc make_rc, DataRate target_before, DataRate target_after,
                  int frames_before, int frames_after, int measure_from,
                  int measure_to) {
  EncoderConfig config;
  config.fps = 30.0;
  config.seed = 5;
  Encoder encoder(config, make_rc());
  video::VideoSource source({.content = video::ContentClass::kTalkingHead,
                             .seed = 9});
  encoder.SetTargetRate(target_before);

  DriveResult result;
  int64_t bits = 0;
  int counted = 0;
  double qp_sum = 0.0;
  double last_qp = 0.0;
  const int total = frames_before + frames_after;
  for (int i = 0; i < total; ++i) {
    if (i == frames_before) encoder.SetTargetRate(target_after);
    const Timestamp now = Timestamp::Millis(i * 33);
    const video::RawFrame frame = source.CaptureFrame(now);
    const EncodedFrame encoded = encoder.EncodeFrame(frame, now);
    if (i >= measure_from && i < measure_to) {
      bits += encoded.size.bits();
      qp_sum += encoded.qp;
      if (last_qp > 0.0) {
        result.max_qp_step =
            std::max(result.max_qp_step, std::abs(encoded.qp - last_qp));
      }
      ++counted;
    }
    last_qp = encoded.qp;
  }
  result.bitrate_kbps =
      static_cast<double>(bits) / (counted / 30.0) / 1e3;
  result.mean_qp = qp_sum / counted;
  return result;
}

std::unique_ptr<RateControl> MakeAbr() {
  AbrConfig config;
  config.fps = 30.0;
  return std::make_unique<AbrRateControl>(config);
}

std::unique_ptr<RateControl> MakeCbr() {
  CbrConfig config;
  config.fps = 30.0;
  return std::make_unique<CbrRateControl>(config);
}

TEST(AbrRateControlTest, ConvergesToTargetLongRun) {
  const auto r = Drive(MakeAbr, DataRate::KilobitsPerSec(1500),
                       DataRate::KilobitsPerSec(1500), 0, 900, 300, 900);
  EXPECT_NEAR(r.bitrate_kbps, 1500.0, 150.0);
}

TEST(AbrRateControlTest, TracksLowTargetToo) {
  const auto r = Drive(MakeAbr, DataRate::KilobitsPerSec(400),
                       DataRate::KilobitsPerSec(400), 0, 900, 300, 900);
  EXPECT_NEAR(r.bitrate_kbps, 400.0, 60.0);
}

TEST(AbrRateControlTest, ReactsSlowlyToTargetDrop) {
  // Right after the target halves, the *output* bitrate must still be much
  // closer to the old target than the new one — x264's documented
  // sluggishness, and the paper's motivation.
  const auto first_half_second =
      Drive(MakeAbr, DataRate::KilobitsPerSec(2000),
            DataRate::KilobitsPerSec(800), 600, 300, 600, 615);
  EXPECT_GT(first_half_second.bitrate_kbps, 1000.0);

  // But several seconds later it has converged.
  const auto later = Drive(MakeAbr, DataRate::KilobitsPerSec(2000),
                           DataRate::KilobitsPerSec(800), 600, 300, 750, 900);
  EXPECT_NEAR(later.bitrate_kbps, 800.0, 160.0);
}

TEST(AbrRateControlTest, QpStepBounded) {
  const auto r = Drive(MakeAbr, DataRate::KilobitsPerSec(1500),
                       DataRate::KilobitsPerSec(600), 300, 300, 10, 600);
  // lstep with qp_step=4 bounds per-frame QP movement (keyframes and the
  // first frame are exempt, so allow a little slack).
  EXPECT_LE(r.max_qp_step, 8.0);
}

TEST(CbrRateControlTest, ConvergesToTarget) {
  const auto r = Drive(MakeCbr, DataRate::KilobitsPerSec(1200),
                       DataRate::KilobitsPerSec(1200), 0, 900, 300, 900);
  EXPECT_NEAR(r.bitrate_kbps, 1200.0, 180.0);
}

TEST(CbrRateControlTest, ReactsFasterThanAbr) {
  // Compare output bitrate in the first second after a 2000->800 drop: the
  // strict-VBV controller cuts harder (it even undershoots while its buffer
  // debt drains), while ABR is still far above the new target.
  const auto abr = Drive(MakeAbr, DataRate::KilobitsPerSec(2000),
                         DataRate::KilobitsPerSec(800), 600, 60, 600, 630);
  const auto cbr = Drive(MakeCbr, DataRate::KilobitsPerSec(2000),
                         DataRate::KilobitsPerSec(800), 600, 60, 600, 630);
  EXPECT_LT(cbr.bitrate_kbps, abr.bitrate_kbps);
  // And a couple of seconds later it has converged to the new target.
  const auto later = Drive(MakeCbr, DataRate::KilobitsPerSec(2000),
                           DataRate::KilobitsPerSec(800), 600, 300, 720, 900);
  EXPECT_NEAR(later.bitrate_kbps, 800.0, 160.0);
}

TEST(CbrRateControlTest, VbvBoundsFrameSizes) {
  CbrConfig config;
  config.fps = 30.0;
  config.initial_target = DataRate::KilobitsPerSec(800);
  config.vbv_window = TimeDelta::Millis(500);
  CbrRateControl rc(config);
  EncoderConfig econfig;
  econfig.fps = 30.0;
  Encoder encoder(econfig, std::make_unique<CbrRateControl>(config));
  video::VideoSource source({.content = video::ContentClass::kSports,
                             .seed = 2});
  // VBV capacity = 400 kb; no frame may exceed it (plus cap tolerance).
  for (int i = 0; i < 600; ++i) {
    const Timestamp now = Timestamp::Millis(i * 33);
    const EncodedFrame f = encoder.EncodeFrame(source.CaptureFrame(now), now);
    EXPECT_LE(f.size.bits(), static_cast<int64_t>(400'000 * 1.10)) << i;
  }
}

TEST(RateControlTest, Names) {
  EXPECT_EQ(MakeAbr()->name(), "x264-abr");
  EXPECT_EQ(MakeCbr()->name(), "x264-cbr");
}

TEST(RateControlTest, IgnoresNonPositiveTarget) {
  auto rc = MakeAbr();
  rc->SetTargetRate(DataRate::KilobitsPerSec(1200));
  rc->SetTargetRate(DataRate::Zero());
  EXPECT_EQ(rc->current_target().kbps(), 1200);
}

}  // namespace
}  // namespace rave::codec
