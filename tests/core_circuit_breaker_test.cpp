#include "core/circuit_breaker.h"

#include <gtest/gtest.h>

namespace rave::core {
namespace {

CircuitBreaker::Config TestConfig() {
  CircuitBreaker::Config config;
  config.feedback_interval = TimeDelta::Millis(50);
  config.open_after_missed = 8;  // opens after 400 ms of silence
  config.backoff_factor = 0.7;
  config.floor = DataRate::KilobitsPerSec(50);
  config.pause_after = TimeDelta::Seconds(3);
  config.recovery_start_fraction = 0.25;
  config.ramp_up_factor = 1.6;
  return config;
}

// Drives the breaker like the session watchdog: one tick per interval, with
// feedback delivered (or not) at each step.
struct BreakerDriver {
  explicit BreakerDriver(CircuitBreaker::Config config = TestConfig())
      : breaker(config), interval(config.feedback_interval) {}

  void TickWithFeedback(DataRate target) {
    now += interval;
    breaker.OnFeedback(now, target);
    breaker.OnTick(now);
  }

  void TickStarved() {
    now += interval;
    breaker.OnTick(now);
  }

  CircuitBreaker breaker;
  TimeDelta interval;
  Timestamp now = Timestamp::Zero();
};

constexpr auto kClosed = CircuitBreaker::State::kClosed;
constexpr auto kOpen = CircuitBreaker::State::kOpen;
constexpr auto kPaused = CircuitBreaker::State::kPaused;
constexpr auto kRecovering = CircuitBreaker::State::kRecovering;

TEST(CircuitBreakerTest, StaysClosedWithRegularFeedback) {
  BreakerDriver d;
  for (int i = 0; i < 100; ++i) {
    d.TickWithFeedback(DataRate::KilobitsPerSec(2000));
  }
  EXPECT_EQ(d.breaker.state(), kClosed);
  EXPECT_FALSE(d.breaker.Cap().IsFinite());
  EXPECT_EQ(d.breaker.stats().opens, 0);
}

TEST(CircuitBreakerTest, ToleratesShortFeedbackGaps) {
  BreakerDriver d;
  d.TickWithFeedback(DataRate::KilobitsPerSec(2000));
  // 7 missed intervals = 350 ms < the 400 ms threshold.
  for (int i = 0; i < 7; ++i) d.TickStarved();
  EXPECT_EQ(d.breaker.state(), kClosed);
  d.TickWithFeedback(DataRate::KilobitsPerSec(2000));
  EXPECT_EQ(d.breaker.state(), kClosed);
  EXPECT_EQ(d.breaker.stats().opens, 0);
}

TEST(CircuitBreakerTest, OpensAfterMissedReportsAndBacksOff) {
  BreakerDriver d;
  d.TickWithFeedback(DataRate::KilobitsPerSec(2000));
  for (int i = 0; i < 9; ++i) d.TickStarved();
  EXPECT_EQ(d.breaker.state(), kOpen);
  EXPECT_EQ(d.breaker.stats().opens, 1);

  // The cap starts below the last healthy target and keeps shrinking.
  const DataRate cap_now = d.breaker.Cap();
  EXPECT_LT(cap_now.kbps(), 2000);
  d.TickStarved();
  d.TickStarved();
  EXPECT_LT(d.breaker.Cap(), cap_now);
}

TEST(CircuitBreakerTest, BackoffStopsAtFloor) {
  BreakerDriver d;
  d.TickWithFeedback(DataRate::KilobitsPerSec(2000));
  for (int i = 0; i < 40; ++i) d.TickStarved();
  EXPECT_EQ(d.breaker.Cap(), TestConfig().floor);
}

TEST(CircuitBreakerTest, EscalatesToPauseAfterDeadline) {
  BreakerDriver d;
  d.TickWithFeedback(DataRate::KilobitsPerSec(2000));
  EXPECT_FALSE(d.breaker.encoder_paused());
  // 3 s of starvation at 50 ms per tick.
  for (int i = 0; i < 62; ++i) d.TickStarved();
  EXPECT_EQ(d.breaker.state(), kPaused);
  EXPECT_TRUE(d.breaker.encoder_paused());
  EXPECT_EQ(d.breaker.stats().pauses, 1);
  EXPECT_GT(d.breaker.stats().time_paused, TimeDelta::Zero());
}

TEST(CircuitBreakerTest, FeedbackResumptionEntersRecoveryWithKeyframe) {
  BreakerDriver d;
  d.TickWithFeedback(DataRate::KilobitsPerSec(2000));
  for (int i = 0; i < 10; ++i) d.TickStarved();
  ASSERT_EQ(d.breaker.state(), kOpen);
  EXPECT_FALSE(d.breaker.TakeKeyframeRequest());

  d.TickWithFeedback(DataRate::KilobitsPerSec(2000));
  EXPECT_EQ(d.breaker.state(), kRecovering);
  // Exactly one keyframe request per resumption.
  EXPECT_TRUE(d.breaker.TakeKeyframeRequest());
  EXPECT_FALSE(d.breaker.TakeKeyframeRequest());
  // The ramp starts at a fraction of the last healthy target, not at it.
  EXPECT_LE(d.breaker.Cap().kbps(), 2000 * 0.25 * 1.6 + 1);
}

TEST(CircuitBreakerTest, RecoveryRampsUpToTargetThenCloses) {
  BreakerDriver d;
  d.TickWithFeedback(DataRate::KilobitsPerSec(2000));
  for (int i = 0; i < 10; ++i) d.TickStarved();

  // Feedback resumes; the cap must ramp monotonically and close within a
  // bounded number of reports (0.25 * 1.6^n >= 1 -> n <= 3).
  DataRate prev = DataRate::Zero();
  int reports = 0;
  while (d.breaker.state() != kClosed && reports < 20) {
    d.TickWithFeedback(DataRate::KilobitsPerSec(2000));
    ++reports;
    if (d.breaker.state() == kRecovering) {
      EXPECT_GE(d.breaker.Cap(), prev);
      prev = d.breaker.Cap();
    }
  }
  EXPECT_EQ(d.breaker.state(), kClosed);
  EXPECT_LE(reports, 5);
  EXPECT_FALSE(d.breaker.Cap().IsFinite());
  EXPECT_EQ(d.breaker.stats().recoveries, 1);
}

TEST(CircuitBreakerTest, RecoveryDoesNotOvershootShrunkEstimate) {
  BreakerDriver d;
  d.TickWithFeedback(DataRate::KilobitsPerSec(2000));
  for (int i = 0; i < 10; ++i) d.TickStarved();

  // The estimator came back much lower than before the outage: the ramp
  // start is bounded by the new estimate, not the stale healthy target.
  d.TickWithFeedback(DataRate::KilobitsPerSec(300));
  EXPECT_LE(d.breaker.Cap(), DataRate::KilobitsPerSec(300));
}

TEST(CircuitBreakerTest, ReopensWhenStarvedDuringRecovery) {
  BreakerDriver d;
  d.TickWithFeedback(DataRate::KilobitsPerSec(2000));
  for (int i = 0; i < 10; ++i) d.TickStarved();
  d.TickWithFeedback(DataRate::KilobitsPerSec(2000));
  ASSERT_EQ(d.breaker.state(), kRecovering);

  // Feedback dies again mid-ramp.
  for (int i = 0; i < 10; ++i) d.TickStarved();
  EXPECT_EQ(d.breaker.state(), kOpen);
  EXPECT_EQ(d.breaker.stats().opens, 2);
}

TEST(CircuitBreakerTest, PausedRecoversDirectlyOnFeedback) {
  BreakerDriver d;
  d.TickWithFeedback(DataRate::KilobitsPerSec(2000));
  for (int i = 0; i < 70; ++i) d.TickStarved();
  ASSERT_EQ(d.breaker.state(), kPaused);
  d.TickWithFeedback(DataRate::KilobitsPerSec(2000));
  EXPECT_EQ(d.breaker.state(), kRecovering);
  EXPECT_FALSE(d.breaker.encoder_paused());
  EXPECT_TRUE(d.breaker.TakeKeyframeRequest());
}

TEST(CircuitBreakerTest, DisabledBreakerNeverEngages) {
  CircuitBreaker::Config config = TestConfig();
  config.enabled = false;
  BreakerDriver d(config);
  for (int i = 0; i < 200; ++i) d.TickStarved();
  EXPECT_EQ(d.breaker.state(), kClosed);
  EXPECT_FALSE(d.breaker.Cap().IsFinite());
  EXPECT_FALSE(d.breaker.encoder_paused());
}

TEST(CircuitBreakerTest, ToStringNamesStates) {
  EXPECT_EQ(ToString(kClosed), "closed");
  EXPECT_EQ(ToString(kOpen), "open");
  EXPECT_EQ(ToString(kPaused), "paused");
  EXPECT_EQ(ToString(kRecovering), "recovering");
}

}  // namespace
}  // namespace rave::core
