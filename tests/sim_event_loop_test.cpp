#include "sim/event_loop.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "util/alloc_probe.h"

namespace rave {
namespace {

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(TimeDelta::Millis(20), [&] { order.push_back(2); });
  loop.Schedule(TimeDelta::Millis(10), [&] { order.push_back(1); });
  loop.Schedule(TimeDelta::Millis(30), [&] { order.push_back(3); });
  loop.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.events_executed(), 3u);
}

TEST(EventLoopTest, SameTimeEventsRunInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.Schedule(TimeDelta::Millis(5), [&order, i] { order.push_back(i); });
  }
  loop.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoopTest, NowAdvancesToEventTime) {
  EventLoop loop;
  Timestamp seen = Timestamp::Zero();
  loop.Schedule(TimeDelta::Millis(123), [&] { seen = loop.now(); });
  loop.RunAll();
  EXPECT_EQ(seen, Timestamp::Millis(123));
}

TEST(EventLoopTest, RunUntilStopsAtBoundaryInclusive) {
  EventLoop loop;
  int ran = 0;
  loop.Schedule(TimeDelta::Millis(10), [&] { ++ran; });
  loop.Schedule(TimeDelta::Millis(20), [&] { ++ran; });
  loop.Schedule(TimeDelta::Millis(21), [&] { ++ran; });
  loop.RunUntil(Timestamp::Millis(20));
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(loop.now(), Timestamp::Millis(20));
  loop.RunAll();
  EXPECT_EQ(ran, 3);
}

TEST(EventLoopTest, RunForAdvancesClockEvenWithoutEvents) {
  EventLoop loop;
  loop.RunFor(TimeDelta::Seconds(5));
  EXPECT_EQ(loop.now(), Timestamp::Seconds(5));
}

TEST(EventLoopTest, ReentrantScheduling) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(TimeDelta::Millis(10), [&] {
    order.push_back(1);
    loop.Schedule(TimeDelta::Millis(5), [&] { order.push_back(2); });
  });
  loop.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(loop.now(), Timestamp::Millis(15));
}

TEST(EventLoopTest, ZeroAndNegativeDelaysClampToNow) {
  EventLoop loop;
  loop.RunFor(TimeDelta::Millis(100));
  Timestamp seen = Timestamp::MinusInfinity();
  loop.Schedule(TimeDelta::Millis(-50), [&] { seen = loop.now(); });
  loop.RunAll();
  EXPECT_EQ(seen, Timestamp::Millis(100));
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  int ran = 0;
  EventHandle handle = loop.Schedule(TimeDelta::Millis(10), [&] { ++ran; });
  loop.Schedule(TimeDelta::Millis(20), [&] { ++ran; });
  loop.Cancel(handle);
  loop.RunAll();
  EXPECT_EQ(ran, 1);
}

TEST(EventLoopTest, CancelInertHandleIsNoop) {
  EventLoop loop;
  loop.Cancel(EventHandle{});
  int ran = 0;
  loop.Schedule(TimeDelta::Millis(1), [&] { ++ran; });
  loop.RunAll();
  EXPECT_EQ(ran, 1);
}

TEST(EventLoopTest, PendingCountExcludesCancelled) {
  EventLoop loop;
  EventHandle h = loop.Schedule(TimeDelta::Millis(10), [] {});
  loop.Schedule(TimeDelta::Millis(20), [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.Cancel(h);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoopTest, CancelAfterExecutionIsNoop) {
  EventLoop loop;
  int ran = 0;
  EventHandle h = loop.Schedule(TimeDelta::Millis(10), [&] { ++ran; });
  loop.RunAll();
  EXPECT_EQ(ran, 1);
  loop.Cancel(h);  // already ran; must not disturb later events
  loop.Schedule(TimeDelta::Millis(10), [&] { ++ran; });
  EXPECT_EQ(loop.pending(), 1u);
  loop.RunAll();
  EXPECT_EQ(ran, 2);
}

TEST(EventLoopTest, DoubleCancelIsNoop) {
  EventLoop loop;
  int ran = 0;
  EventHandle h = loop.Schedule(TimeDelta::Millis(10), [&] { ++ran; });
  loop.Schedule(TimeDelta::Millis(20), [&] { ++ran; });
  loop.Cancel(h);
  loop.Cancel(h);
  loop.RunAll();
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.events_executed(), 1u);
}

// Stress test and perf canary for the cancel path: 100k events with half of
// them cancelled must execute exactly the live half, in order. Before the
// O(1) tombstone lookup this was an O(pending x cancelled) scan per pop and
// took minutes; it now finishes in milliseconds.
TEST(EventLoopTest, ScheduleCancelStress100k) {
  constexpr int kEvents = 100'000;
  EventLoop loop;
  loop.Reserve(kEvents);
  std::vector<EventHandle> handles;
  handles.reserve(kEvents);
  int64_t executed_sum = 0;
  for (int i = 0; i < kEvents; ++i) {
    // Spread fire times so the heap stays deep while cancelled tombstones
    // are interleaved with live events.
    handles.push_back(loop.Schedule(TimeDelta::Micros(1 + (i * 7919) % 5000),
                                    [&executed_sum, i] { executed_sum += i; }));
  }
  int64_t expected_sum = 0;
  for (int i = 0; i < kEvents; ++i) {
    if (i % 2 == 0) {
      loop.Cancel(handles[static_cast<size_t>(i)]);
    } else {
      expected_sum += i;
    }
  }
  EXPECT_EQ(loop.pending(), static_cast<size_t>(kEvents) / 2);
  loop.RunAll();
  EXPECT_EQ(loop.events_executed(), static_cast<uint64_t>(kEvents) / 2);
  EXPECT_EQ(executed_sum, expected_sum);
  EXPECT_EQ(loop.pending(), 0u);
}

// Cancelling mid-run from inside a callback must prevent the target from
// firing even when both events share a fire time.
TEST(EventLoopTest, CancelFromCallbackSameTime) {
  EventLoop loop;
  int ran = 0;
  EventHandle victim;
  loop.Schedule(TimeDelta::Millis(10), [&] { loop.Cancel(victim); });
  victim = loop.Schedule(TimeDelta::Millis(10), [&] { ++ran; });
  loop.RunAll();
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(loop.events_executed(), 1u);
}

TEST(RepeatingTaskTest, FiresAtPeriod) {
  EventLoop loop;
  int fired = 0;
  RepeatingTask task(loop, TimeDelta::Millis(100), [&] { ++fired; });
  task.Start();
  loop.RunFor(TimeDelta::Millis(1000));
  EXPECT_EQ(fired, 10);
}

TEST(RepeatingTaskTest, StartWithDelayZeroFiresImmediately) {
  EventLoop loop;
  std::vector<int64_t> fire_times_ms;
  RepeatingTask task(loop, TimeDelta::Millis(100),
                     [&] { fire_times_ms.push_back(loop.now().ms()); });
  task.StartWithDelay(TimeDelta::Zero());
  loop.RunFor(TimeDelta::Millis(250));
  EXPECT_EQ(fire_times_ms, (std::vector<int64_t>{0, 100, 200}));
}

TEST(RepeatingTaskTest, StopHaltsFiring) {
  EventLoop loop;
  int fired = 0;
  RepeatingTask task(loop, TimeDelta::Millis(10), [&] { ++fired; });
  task.Start();
  loop.RunFor(TimeDelta::Millis(35));
  task.Stop();
  loop.RunFor(TimeDelta::Millis(100));
  EXPECT_EQ(fired, 3);
  EXPECT_FALSE(task.running());
}

TEST(RepeatingTaskTest, StopFromWithinCallback) {
  EventLoop loop;
  int fired = 0;
  RepeatingTask task(loop, TimeDelta::Millis(10), [&] {
    ++fired;
    // Stop after the second firing; `task` must survive re-entrant Stop.
  });
  task.Start();
  RepeatingTask stopper(loop, TimeDelta::Millis(25), [&] { task.Stop(); });
  stopper.Start();
  loop.RunFor(TimeDelta::Millis(200));
  EXPECT_EQ(fired, 2);
}

TEST(RepeatingTaskTest, RestartResetsPhase) {
  EventLoop loop;
  int fired = 0;
  RepeatingTask task(loop, TimeDelta::Millis(100), [&] { ++fired; });
  task.Start();
  loop.RunFor(TimeDelta::Millis(150));  // fired once at 100
  task.Start();                         // re-phase: next at 250
  loop.RunFor(TimeDelta::Millis(120));  // now at 270
  EXPECT_EQ(fired, 2);
}

// --- generation-slot liveness table ---

TEST(EventLoopSlotTableTest, StaleHandleCannotCancelSlotReusedByNewEvent) {
  EventLoop loop;
  bool first_fired = false;
  bool second_fired = false;
  EventHandle first =
      loop.Schedule(TimeDelta::Millis(10), [&] { first_fired = true; });
  loop.Cancel(first);  // releases the slot; `first` is now stale
  // The freed slot is reused (LIFO free list) by the next schedule.
  loop.Schedule(TimeDelta::Millis(20), [&] { second_fired = true; });
  loop.Cancel(first);  // stale generation: must NOT kill the new event
  loop.RunAll();
  EXPECT_FALSE(first_fired);
  EXPECT_TRUE(second_fired);
}

TEST(EventLoopSlotTableTest, HandleStaysStaleAcrossManySlotReuses) {
  EventLoop loop;
  EventHandle stale = loop.Schedule(TimeDelta::Millis(1), [] {});
  loop.Cancel(stale);
  int fired = 0;
  // Recycle the same slot many times; the stale handle must never match any
  // of the new generations.
  for (int i = 0; i < 1000; ++i) {
    loop.Schedule(TimeDelta::Millis(1), [&fired] { ++fired; });
    loop.Cancel(stale);
    loop.RunFor(TimeDelta::Millis(2));
  }
  EXPECT_EQ(fired, 1000);
}

TEST(EventLoopSlotTableTest, CancelAfterFireWithReusedSlotIsNoop) {
  EventLoop loop;
  int fired = 0;
  EventHandle ran =
      loop.Schedule(TimeDelta::Millis(1), [&fired] { ++fired; });
  loop.RunFor(TimeDelta::Millis(5));
  EXPECT_EQ(fired, 1);
  // The fired event's slot is free; a new event takes it.
  loop.Schedule(TimeDelta::Millis(1), [&fired] { ++fired; });
  loop.Cancel(ran);  // refers to the already-fired event, not the new one
  loop.RunAll();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoopSlotTableTest, PendingCountsLiveEventsNotTombstones) {
  EventLoop loop;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(loop.Schedule(TimeDelta::Millis(i + 1), [] {}));
  }
  EXPECT_EQ(loop.pending(), 10u);
  for (int i = 0; i < 10; i += 2) loop.Cancel(handles[static_cast<size_t>(i)]);
  // Tombstones still sit in the heap, but pending() reflects liveness.
  EXPECT_EQ(loop.pending(), 5u);
  loop.RunAll();
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoopSlotTableTest, ReserveKeepsScheduleCancelAllocationFree) {
  EventLoop loop;
  loop.Reserve(256);
  // Warm once: the first firings may lazily touch nothing, but keep the
  // pattern identical to the measured pass.
  for (int i = 0; i < 256; ++i) {
    loop.Cancel(loop.Schedule(TimeDelta::Millis(1), [] {}));
  }
  loop.RunFor(TimeDelta::Millis(2));
  AllocScope scope;
  for (int i = 0; i < 256; ++i) {
    loop.Cancel(loop.Schedule(TimeDelta::Millis(1), [] {}));
  }
  loop.RunFor(TimeDelta::Millis(2));
  if (AllocProbeEnabled()) {
    EXPECT_EQ(scope.allocs(), 0u);
  }
}

TEST(EventLoopSlotTableTest, CallbackResourcesReleasedOnCancel) {
  EventLoop loop;
  auto tracked = std::make_shared<int>(1);
  std::weak_ptr<int> watch = tracked;
  EventHandle h =
      loop.Schedule(TimeDelta::Millis(5), [keep = std::move(tracked)] {});
  ASSERT_FALSE(watch.expired());
  loop.Cancel(h);
  // Cancellation releases the captured state immediately, without waiting
  // for the tombstone to surface from the heap.
  EXPECT_TRUE(watch.expired());
}

// --- two-level wheel horizons ---
//
// Delays are chosen to land one event in each storage tier: the L0 per-µs
// window (< ~4 ms), the L1 outer wheel (< ~16.8 s), and the overflow heap
// (beyond). The tiers are an implementation detail; these tests pin the
// observable contract — exact peek times and strict (fire time, seq) order —
// across every tier boundary.

TEST(EventLoopWheelTest, OrderPreservedAcrossAllHorizons) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(TimeDelta::Seconds(20), [&] { order.push_back(5); });   // heap
  loop.Schedule(TimeDelta::Micros(100), [&] { order.push_back(1); });  // L0
  loop.Schedule(TimeDelta::Seconds(1), [&] { order.push_back(3); });   // L1
  loop.Schedule(TimeDelta::Millis(5), [&] { order.push_back(2); });    // L1
  loop.Schedule(TimeDelta::Seconds(2), [&] { order.push_back(4); });   // L1
  loop.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(loop.now(), Timestamp::Seconds(20));
}

TEST(EventLoopWheelTest, SameTimeTiesRunInScheduleOrderAcrossTiers) {
  EventLoop loop;
  std::vector<int> order;
  // All fire at the same instant, far enough out to start life in the heap,
  // then migrate heap -> L1 -> L0 before dispatch. The migrations must keep
  // scheduling order.
  for (int i = 0; i < 8; ++i) {
    loop.Schedule(TimeDelta::Seconds(18), [&order, i] { order.push_back(i); });
  }
  loop.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventLoopWheelTest, NextEventTimeIsExactInEveryTier) {
  EventLoop loop;
  EXPECT_EQ(loop.NextEventTime(), Timestamp::PlusInfinity());

  loop.Schedule(TimeDelta::Seconds(19) + TimeDelta::Micros(7), [] {});
  EXPECT_EQ(loop.NextEventTime(),
            Timestamp::Seconds(19) + TimeDelta::Micros(7));  // heap

  loop.Schedule(TimeDelta::Millis(900) + TimeDelta::Micros(3), [] {});
  EXPECT_EQ(loop.NextEventTime(),
            Timestamp::Millis(900) + TimeDelta::Micros(3));  // L1, exact µs

  loop.Schedule(TimeDelta::Micros(250), [] {});
  EXPECT_EQ(loop.NextEventTime(), Timestamp::Micros(250));  // L0
  loop.RunAll();
  EXPECT_EQ(loop.NextEventTime(), Timestamp::PlusInfinity());
}

TEST(EventLoopWheelTest, CancelledEventsNeverFireFromL1OrHeap) {
  EventLoop loop;
  int fired = 0;
  EventHandle in_l1 = loop.Schedule(TimeDelta::Millis(500), [&] { ++fired; });
  EventHandle in_heap = loop.Schedule(TimeDelta::Seconds(19), [&] { ++fired; });
  loop.Schedule(TimeDelta::Seconds(19), [&] { ++fired; });  // survivor
  loop.Cancel(in_l1);
  loop.Cancel(in_heap);
  EXPECT_EQ(loop.pending(), 1u);
  loop.RunAll();
  EXPECT_EQ(fired, 1);
}

// --- TryAdvanceTo gating ---

TEST(EventLoopCoalesceTest, StepGrantedOnlyWhenStrictlyBeforeEveryEvent) {
  EventLoop loop;
  ASSERT_TRUE(loop.coalescing());  // default on (RAVE_NO_COALESCE unset)
  bool granted_past_pending = true;
  bool granted_free_gap = false;
  loop.Schedule(TimeDelta::Millis(12), [] {});
  loop.Schedule(TimeDelta::Millis(10), [&] {
    // An event pends at 12 ms <= 15 ms: the step must be refused.
    granted_past_pending = loop.TryAdvanceTo(Timestamp::Millis(15));
    // 11 ms is strictly before every pending event: granted, time moves.
    granted_free_gap = loop.TryAdvanceTo(Timestamp::Millis(11));
  });
  loop.RunAll();
  EXPECT_FALSE(granted_past_pending);
  EXPECT_TRUE(granted_free_gap);
}

TEST(EventLoopCoalesceTest, StepRefusedBeyondRunBoundAndWhenDisabled) {
  EventLoop loop;
  bool past_bound = true;
  bool within_bound = false;
  loop.Schedule(TimeDelta::Millis(5), [&] {
    past_bound = loop.TryAdvanceTo(Timestamp::Millis(25));   // bound is 20 ms
    within_bound = loop.TryAdvanceTo(Timestamp::Millis(18));
  });
  loop.RunUntil(Timestamp::Millis(20));
  EXPECT_FALSE(past_bound);
  EXPECT_TRUE(within_bound);

  EventLoop off;
  off.set_coalescing(false);
  bool granted = true;
  off.Schedule(TimeDelta::Millis(5),
               [&] { granted = off.TryAdvanceTo(Timestamp::Millis(8)); });
  off.RunAll();
  EXPECT_FALSE(granted);
}

TEST(EventLoopCoalesceTest, LogicalEventCountInvariantAcrossModes) {
  // A self-rescheduling worker that prefers stepping: with coalescing it
  // advances through its cadence inside one dispatch; without, every tick is
  // its own event. events_executed must come out identical.
  auto run = [](bool coalesce) {
    EventLoop loop;
    loop.set_coalescing(coalesce);
    int ticks = 0;
    std::function<void()> tick = [&] {
      ++ticks;
      while (ticks < 50) {
        const Timestamp next = loop.now() + TimeDelta::Micros(700);
        if (loop.TryAdvanceTo(next)) {
          ++ticks;
        } else {
          loop.ScheduleAt(next, [&] { tick(); });
          return;
        }
      }
    };
    loop.Schedule(TimeDelta::Micros(700), [&] { tick(); });
    // A cross-cutting periodic event forces refusals mid-train.
    RepeatingTask other(loop, TimeDelta::Millis(3), [] {});
    other.Start();
    loop.RunUntil(Timestamp::Millis(60));
    return std::pair<int, uint64_t>(ticks, loop.events_executed());
  };
  const auto with = run(true);
  const auto without = run(false);
  EXPECT_EQ(with.first, without.first);
  EXPECT_EQ(with.second, without.second);
}

}  // namespace
}  // namespace rave
