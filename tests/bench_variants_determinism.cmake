# Runs a bench binary once per argument variant and fails unless every run's
# output is byte-identical to the first. Generalizes bench_determinism.cmake
# to execution knobs that must never change results (--batch, --simd, --jobs
# in any combination). Invoked by ctest (see bench/CMakeLists.txt):
#
#   cmake -DBINARY=<path> -DOUT=<output-prefix>
#         "-DVARIANTS=--batch=1|--batch=16 --simd=scalar|..."
#         [-DEXTRA_ARGS=...] [-DCACHE_DIR=<dir>]
#         -P bench_variants_determinism.cmake
#
# Variants are separated by "|"; arguments within one variant by spaces.
# A variant token of the form NAME=value (no leading "--") is an environment
# variable for that run instead of a binary argument — e.g. the variant
# "RAVE_NO_COALESCE=1 --jobs=8" runs with event coalescing force-disabled.
# With CACHE_DIR set, the directory is removed first and every variant runs
# with --cache-dir=<dir>: the first run is a cold cache pass and the rest
# are warm, so the compare also gates cold-vs-warm byte-identity.
if(NOT DEFINED BINARY OR NOT DEFINED OUT OR NOT DEFINED VARIANTS)
  message(FATAL_ERROR
          "bench_variants_determinism.cmake needs -DBINARY, -DOUT, -DVARIANTS")
endif()

if(DEFINED CACHE_DIR)
  file(REMOVE_RECURSE "${CACHE_DIR}")
  list(APPEND EXTRA_ARGS "--cache-dir=${CACHE_DIR}")
endif()

string(REPLACE "|" ";" variant_list "${VARIANTS}")
set(index 0)
foreach(variant IN LISTS variant_list)
  separate_arguments(variant_tokens UNIX_COMMAND "${variant}")
  set(env_args "")
  set(variant_args "")
  foreach(token IN LISTS variant_tokens)
    if(token MATCHES "^[A-Za-z_][A-Za-z0-9_]*=")
      list(APPEND env_args "${token}")
    else()
      list(APPEND variant_args "${token}")
    endif()
  endforeach()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env ${env_args}
            ${BINARY} ${variant_args} ${EXTRA_ARGS}
    OUTPUT_FILE ${OUT}_${index}.txt
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BINARY} ${variant} failed (rc=${rc})")
  endif()
  if(index GREATER 0)
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
              ${OUT}_0.txt ${OUT}_${index}.txt
      RESULT_VARIABLE diff_rc)
    if(NOT diff_rc EQUAL 0)
      message(FATAL_ERROR
              "${BINARY}: output of '${variant}' differs from the first "
              "variant (${OUT}_0.txt vs ${OUT}_${index}.txt)")
    endif()
  endif()
  math(EXPR index "${index} + 1")
endforeach()
