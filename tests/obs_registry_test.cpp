// Metrics-registry unit tests: histogram bucket/percentile math, registry
// lookup semantics (pointer stability, one-time bounds construction),
// snapshot merging, and the serialization round trip through both the raw
// byte codec and a full result-cache blob.
#include "obs/metrics_registry.h"

#include <gtest/gtest.h>

#include "common.h"
#include "runner/result_cache.h"
#include "rtc/session.h"
#include "util/byteio.h"

namespace rave::obs {
namespace {

int g_bounds_calls = 0;
std::vector<double> CountingBounds() {
  ++g_bounds_calls;
  return {1.0, 2.0, 5.0};
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 5.0});
  h.Record(1.0);   // exactly on bound 0 -> bucket 0
  h.Record(1.5);   // bucket 1
  h.Record(2.0);   // exactly on bound 1 -> bucket 1
  h.Record(5.0);   // bucket 2
  h.Record(5.01);  // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 2u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.01);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.5 + 2.0 + 5.0 + 5.01);
}

TEST(HistogramTest, PercentileEdgeCases) {
  Histogram empty({1.0, 2.0});
  EXPECT_DOUBLE_EQ(empty.Percentile(0.5), 0.0);

  Histogram one({1.0, 10.0});
  one.Record(3.0);
  // A single sample answers every quantile with itself (clamped to max).
  EXPECT_DOUBLE_EQ(one.Percentile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(one.Percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(one.Percentile(1.0), 3.0);

  Histogram h({10.0, 20.0, 30.0});
  for (double v : {5.0, 15.0, 25.0}) h.Record(v);
  // Quantiles are clamped into [min, max] whatever the bucket bounds say.
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 25.0);
  const double p50 = h.Percentile(0.5);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 20.0);
}

TEST(HistogramTest, OverflowSamplesStayInsideMinMax) {
  Histogram h({1.0, 2.0});
  h.Record(100.0);
  h.Record(200.0);
  EXPECT_EQ(h.bucket_counts().back(), 2u);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 200.0);
  EXPECT_GE(h.Percentile(0.5), 100.0);
  EXPECT_LE(h.Percentile(0.5), 200.0);
}

TEST(HistogramTest, BoundsHelpers) {
  const std::vector<double> exp = ExponentialBounds(1.0, 1000.0, 4);
  ASSERT_EQ(exp.size(), 4u);
  EXPECT_DOUBLE_EQ(exp.front(), 1.0);
  EXPECT_DOUBLE_EQ(exp.back(), 1000.0);
  for (size_t i = 1; i < exp.size(); ++i) EXPECT_GT(exp[i], exp[i - 1]);

  const std::vector<double> lin = LinearBounds(0.0, 10.0, 5);
  ASSERT_EQ(lin.size(), 5u);
  EXPECT_DOUBLE_EQ(lin.front(), 2.0);
  EXPECT_DOUBLE_EQ(lin.back(), 10.0);
}

TEST(MetricsRegistryTest, RepeatLookupsReturnTheSamePointer) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("a.count");
  c->Add(3);
  EXPECT_EQ(registry.GetCounter("a.count"), c);
  EXPECT_EQ(registry.GetCounter("a.count")->value(), 3u);

  Gauge* g = registry.GetGauge("a.gauge");
  g->Set(1.5);
  EXPECT_EQ(registry.GetGauge("a.gauge"), g);
}

TEST(MetricsRegistryTest, HistogramBoundsBuiltExactlyOnce) {
  MetricsRegistry registry;
  g_bounds_calls = 0;
  Histogram* h = registry.GetHistogram("a.hist", &CountingBounds);
  EXPECT_EQ(g_bounds_calls, 1);
  EXPECT_EQ(registry.GetHistogram("a.hist", &CountingBounds), h);
  EXPECT_EQ(registry.GetHistogram("a.hist", &CountingBounds), h);
  EXPECT_EQ(g_bounds_calls, 1);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("z.last")->Add();
  registry.GetGauge("m.middle")->Set(2.0);
  registry.GetCounter("a.first")->Add(5);
  const RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "a.first");
  EXPECT_EQ(snap.metrics[1].name, "m.middle");
  EXPECT_EQ(snap.metrics[2].name, "z.last");
  EXPECT_EQ(snap.Find("a.first")->counter, 5u);
  EXPECT_EQ(snap.Find("missing"), nullptr);
}

TEST(RegistrySnapshotTest, MergeAddsCountersAndAveragesGauges) {
  MetricsRegistry a;
  a.GetCounter("n")->Add(2);
  a.GetGauge("g")->Set(1.0);
  MetricsRegistry b;
  b.GetCounter("n")->Add(3);
  b.GetGauge("g")->Set(3.0);
  b.GetCounter("only_b")->Add(7);

  RegistrySnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.Find("n")->counter, 5u);
  EXPECT_DOUBLE_EQ(merged.Find("g")->gauge, 2.0);  // mean of 1 and 3
  EXPECT_EQ(merged.Find("only_b")->counter, 7u);
}

TEST(RegistrySnapshotTest, MergeAddsHistogramBucketsAndSkipsMismatches) {
  MetricsRegistry a;
  a.GetHistogram("h", [] { return std::vector<double>{1.0, 2.0}; })
      ->Record(0.5);
  MetricsRegistry b;
  b.GetHistogram("h", [] { return std::vector<double>{1.0, 2.0}; })
      ->Record(1.5);
  RegistrySnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  const MetricSnapshot* h = merged.Find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(h->bucket_counts[0], 1u);
  EXPECT_EQ(h->bucket_counts[1], 1u);
  EXPECT_DOUBLE_EQ(h->min, 0.5);
  EXPECT_DOUBLE_EQ(h->max, 1.5);

  // A histogram with different bounds cannot be merged meaningfully; the
  // original stays untouched.
  MetricsRegistry c;
  c.GetHistogram("h", [] { return std::vector<double>{9.0}; })->Record(1.0);
  RegistrySnapshot kept = a.Snapshot();
  kept.Merge(c.Snapshot());
  EXPECT_EQ(kept.Find("h")->count, 1u);
  EXPECT_EQ(kept.Find("h")->bounds.size(), 2u);
}

TEST(RegistrySnapshotTest, ByteCodecRoundTrips) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(42);
  registry.GetGauge("g")->Set(-2.25);
  Histogram* h = registry.GetHistogram(
      "h", [] { return ExponentialBounds(1.0, 100.0, 6); });
  for (double v : {0.5, 3.0, 250.0}) h->Record(v);
  const RegistrySnapshot snap = registry.Snapshot();

  ByteWriter w;
  snap.Encode(w);
  const std::vector<uint8_t> bytes = w.Take();
  ByteReader r(bytes.data(), bytes.size());
  const RegistrySnapshot decoded = RegistrySnapshot::Decode(r);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(decoded, snap);
}

TEST(RegistrySnapshotTest, SurvivesAResultCacheBlobRoundTrip) {
  rtc::SessionConfig config = bench::DefaultConfig(
      rtc::Scheme::kAdaptive, bench::DropTrace(0.5),
      video::ContentClass::kTalkingHead, TimeDelta::Seconds(12), /*seed=*/7);
  const rtc::SessionResult result = rtc::RunSession(config);
  ASSERT_FALSE(result.metrics.metrics.empty());
  EXPECT_NE(result.metrics.Find("encoder.frames_encoded"), nullptr);
  EXPECT_NE(result.metrics.Find("frame.latency_ms"), nullptr);
  EXPECT_NE(result.metrics.Find("session.events"), nullptr);

  const std::vector<uint8_t> blob = runner::ResultCache::EncodeResult(result);
  rtc::SessionResult decoded;
  ASSERT_TRUE(runner::ResultCache::DecodeResult(blob, &decoded));
  EXPECT_EQ(decoded.metrics, result.metrics);
}

TEST(MetricsScopeTest, InstallsAndRestores) {
  EXPECT_EQ(CurrentMetrics(), nullptr);
  MetricsRegistry registry;
  {
    MetricsScope scope(&registry);
    EXPECT_EQ(CurrentMetrics(), &registry);
    MetricsRegistry inner;
    {
      MetricsScope nested(&inner);
      EXPECT_EQ(CurrentMetrics(), &inner);
    }
    EXPECT_EQ(CurrentMetrics(), &registry);
  }
  EXPECT_EQ(CurrentMetrics(), nullptr);
}

}  // namespace
}  // namespace rave::obs
