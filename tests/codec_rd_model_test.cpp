#include "codec/rd_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rave::codec {
namespace {

video::RawFrame MakeFrame(double spatial = 1.0, double temporal = 0.5,
                          video::Resolution res = {1280, 720}) {
  video::RawFrame f;
  f.resolution = res;
  f.spatial_complexity = spatial;
  f.temporal_complexity = temporal;
  return f;
}

TEST(QpQscaleTest, KnownAnchors) {
  // x264: QP 12 -> qscale 0.85; +6 QP doubles qscale.
  EXPECT_NEAR(QpToQscale(12.0), 0.85, 1e-12);
  EXPECT_NEAR(QpToQscale(18.0), 1.70, 1e-12);
  EXPECT_NEAR(QpToQscale(24.0), 3.40, 1e-12);
}

TEST(QpQscaleTest, RoundTrip) {
  for (double qp = kMinQp; qp <= kMaxQp; qp += 0.5) {
    EXPECT_NEAR(QscaleToQp(QpToQscale(qp)), qp, 1e-9);
  }
}

class RdMonotonicityTest : public ::testing::TestWithParam<FrameType> {};

TEST_P(RdMonotonicityTest, BitsDecreaseWithQscale) {
  RdModel model({}, Rng(1));
  const video::RawFrame frame = MakeFrame();
  int64_t prev = std::numeric_limits<int64_t>::max();
  for (double qp = kMinQp; qp <= kMaxQp; qp += 1.0) {
    const int64_t bits =
        model.ExpectedBits(GetParam(), frame, QpToQscale(qp)).bits();
    EXPECT_LE(bits, prev) << "qp=" << qp;
    prev = bits;
  }
}

TEST_P(RdMonotonicityTest, BitsIncreaseWithComplexity) {
  RdModel model({}, Rng(1));
  const double qscale = QpToQscale(26);
  int64_t prev = 0;
  for (double c = 0.2; c <= 3.0; c += 0.2) {
    const video::RawFrame frame = MakeFrame(c, c);
    const int64_t bits = model.ExpectedBits(GetParam(), frame, qscale).bits();
    EXPECT_GE(bits, prev) << "complexity=" << c;
    prev = bits;
  }
}

TEST_P(RdMonotonicityTest, BitsScaleWithPixels) {
  RdModel model({}, Rng(1));
  const double qscale = QpToQscale(26);
  const int64_t bits_720 =
      model.ExpectedBits(GetParam(), MakeFrame(1.0, 0.5, {1280, 720}), qscale)
          .bits();
  const int64_t bits_360 =
      model.ExpectedBits(GetParam(), MakeFrame(1.0, 0.5, {640, 360}), qscale)
          .bits();
  EXPECT_NEAR(static_cast<double>(bits_720) / bits_360, 4.0, 0.01);
}

INSTANTIATE_TEST_SUITE_P(AllFrameTypes, RdMonotonicityTest,
                         ::testing::Values(FrameType::kKey, FrameType::kDelta));

TEST(RdModelTest, KeyFramesCostMoreThanDeltaAtSameQp) {
  RdModel model({}, Rng(1));
  const video::RawFrame frame = MakeFrame(1.0, 0.35);
  const double qscale = QpToQscale(28);
  EXPECT_GT(model.ExpectedBits(FrameType::kKey, frame, qscale).bits(),
            3 * model.ExpectedBits(FrameType::kDelta, frame, qscale).bits());
}

TEST(RdModelTest, InversionHitsTarget) {
  RdModel model({}, Rng(1));
  const video::RawFrame frame = MakeFrame();
  for (int64_t target : {20'000, 50'000, 150'000, 400'000}) {
    const double qscale =
        model.QscaleForBits(FrameType::kDelta, frame, DataSize::Bits(target));
    const int64_t bits =
        model.ExpectedBits(FrameType::kDelta, frame, qscale).bits();
    EXPECT_NEAR(static_cast<double>(bits), static_cast<double>(target),
                0.02 * static_cast<double>(target))
        << "target=" << target;
  }
}

TEST(RdModelTest, InversionClampsToQpRange) {
  RdModel model({}, Rng(1));
  const video::RawFrame frame = MakeFrame();
  // Absurdly small target -> max QP.
  const double hi =
      model.QscaleForBits(FrameType::kKey, frame, DataSize::Bits(10));
  EXPECT_NEAR(QscaleToQp(hi), kMaxQp, 1e-9);
  // Absurdly large target -> min QP.
  const double lo = model.QscaleForBits(FrameType::kKey, frame,
                                        DataSize::Bits(1'000'000'000));
  EXPECT_NEAR(QscaleToQp(lo), kMinQp, 1e-9);
}

TEST(RdModelTest, MinFrameBitsFloor) {
  RdModelConfig config;
  config.min_frame_bits = 1500;
  RdModel model(config, Rng(1));
  const video::RawFrame tiny = MakeFrame(0.001, 0.0001, {64, 64});
  EXPECT_GE(
      model.ExpectedBits(FrameType::kDelta, tiny, QpToQscale(kMaxQp)).bits(),
      1500);
}

TEST(RdModelTest, ActualBitsNoisyButUnbiased) {
  RdModel model({}, Rng(7));
  const video::RawFrame frame = MakeFrame();
  const double qscale = QpToQscale(26);
  const double expected = static_cast<double>(
      model.ExpectedBits(FrameType::kDelta, frame, qscale).bits());
  double sum = 0.0;
  bool saw_different = false;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const double actual = static_cast<double>(
        model.ActualBits(FrameType::kDelta, frame, qscale).bits());
    if (std::abs(actual - expected) > 1.0) saw_different = true;
    sum += actual;
  }
  EXPECT_TRUE(saw_different);
  // Lognormal with sigma=0.08 has mean exp(sigma^2/2) ~ 1.0032 x median.
  EXPECT_NEAR(sum / n / expected, 1.0032, 0.01);
}

TEST(QualityTest, SsimDecreasesWithQp) {
  RdModel model({}, Rng(1));
  const video::RawFrame frame = MakeFrame();
  double prev = 1.1;
  for (double qp = kMinQp; qp <= kMaxQp; qp += 1.0) {
    const double ssim = model.Ssim(frame, QpToQscale(qp));
    EXPECT_LT(ssim, prev);
    EXPECT_GE(ssim, 0.0);
    EXPECT_LE(ssim, 1.0);
    prev = ssim;
  }
}

TEST(QualityTest, SsimPlausibleAtTypicalOperatingPoint) {
  RdModel model({}, Rng(1));
  const double ssim = model.Ssim(MakeFrame(1.0, 0.5), QpToQscale(28));
  EXPECT_GT(ssim, 0.90);
  EXPECT_LT(ssim, 0.99);
}

TEST(QualityTest, PsnrDecreasesWithQp) {
  RdModel model({}, Rng(1));
  const video::RawFrame frame = MakeFrame();
  EXPECT_GT(model.Psnr(frame, 20), model.Psnr(frame, 30));
  EXPECT_GT(model.Psnr(frame, 30), model.Psnr(frame, 45));
}

TEST(BitPredictorTest, ConvergesToTrueCoefficient) {
  RdModel model({}, Rng(3));
  BitPredictor pred(/*gamma=*/1.2, /*initial_coef=*/0.3);
  const video::RawFrame frame = MakeFrame();
  const double cplx = 1280.0 * 720.0 * frame.temporal_complexity;
  for (int i = 0; i < 100; ++i) {
    const double qscale = QpToQscale(20 + (i % 15));
    const DataSize actual = model.ActualBits(FrameType::kDelta, frame, qscale);
    pred.Update(cplx, qscale, actual);
  }
  // After convergence, predictions should be within ~15% of the truth.
  const double qscale = QpToQscale(27);
  const double predicted =
      static_cast<double>(pred.Predict(cplx, qscale).bits());
  const double truth = static_cast<double>(
      model.ExpectedBits(FrameType::kDelta, frame, qscale).bits());
  EXPECT_NEAR(predicted / truth, 1.0, 0.15);
}

TEST(BitPredictorTest, InversionMatchesPrediction) {
  BitPredictor pred(/*gamma=*/1.2, /*initial_coef=*/1.0);
  const double cplx = 1e6 * 0.5;
  const DataSize target = DataSize::Bits(40'000);
  const double qscale = pred.QscaleForBits(cplx, target);
  EXPECT_NEAR(static_cast<double>(pred.Predict(cplx, qscale).bits()),
              static_cast<double>(target.bits()),
              0.02 * static_cast<double>(target.bits()));
}

TEST(BitPredictorTest, IgnoresDegenerateObservations) {
  BitPredictor pred(1.2, 1.0);
  pred.Update(0.0, 5.0, DataSize::Bits(100));
  pred.Update(1e6, -1.0, DataSize::Bits(100));
  pred.Update(1e6, 5.0, DataSize::Zero());
  EXPECT_DOUBLE_EQ(pred.coef(), 1.0);
}

}  // namespace
}  // namespace rave::codec
