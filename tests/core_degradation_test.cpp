#include "core/degradation.h"

#include <gtest/gtest.h>

namespace rave::core {
namespace {

TEST(DegradationTest, StartsAtTopOfLadder) {
  DegradationController controller;
  EXPECT_EQ(controller.resolution(), (video::Resolution{1280, 720}));
  EXPECT_EQ(controller.level(), 0u);
}

TEST(DegradationTest, SustainedHighQpStepsDown) {
  DegradationController controller;
  bool changed = false;
  for (int i = 0; i < 100 && !changed; ++i) {
    changed = controller.OnFrameQp(48.0, Timestamp::Millis(33 * i));
  }
  EXPECT_TRUE(changed);
  EXPECT_EQ(controller.resolution(), (video::Resolution{960, 540}));
}

TEST(DegradationTest, BriefQpSpikeDoesNotStepDown) {
  DegradationController controller;
  // 1 s of high QP (dwell is 1.5 s), then normal again.
  for (int i = 0; i < 30; ++i) {
    EXPECT_FALSE(controller.OnFrameQp(48.0, Timestamp::Millis(33 * i)));
  }
  EXPECT_FALSE(controller.OnFrameQp(35.0, Timestamp::Millis(1000)));
  // The dwell clock restarted at 1100 ms; stop before it elapses.
  for (int i = 0; i < 45; ++i) {
    EXPECT_FALSE(controller.OnFrameQp(48.0,
                                      Timestamp::Millis(1100 + 33 * i)));
  }
  EXPECT_EQ(controller.level(), 0u);
}

TEST(DegradationTest, SustainedLowQpStepsBackUp) {
  DegradationController controller;
  // Step down exactly once (55 frames = 1.8 s of high QP; the second dwell
  // does not complete).
  for (int i = 0; i < 55; ++i) {
    controller.OnFrameQp(48.0, Timestamp::Millis(33 * i));
  }
  ASSERT_EQ(controller.level(), 1u);
  bool changed = false;
  for (int i = 0; i < 100 && !changed; ++i) {
    changed = controller.OnFrameQp(25.0, Timestamp::Millis(5000 + 33 * i));
  }
  EXPECT_TRUE(changed);
  EXPECT_EQ(controller.level(), 0u);
}

TEST(DegradationTest, NeverStepsBelowLadderBottom) {
  DegradationController controller;
  Timestamp now = Timestamp::Zero();
  for (int step = 0; step < 10; ++step) {
    for (int i = 0; i < 100; ++i) {
      controller.OnFrameQp(50.0, now);
      now += TimeDelta::Millis(33);
    }
  }
  EXPECT_EQ(controller.level(), 3u);
  EXPECT_EQ(controller.resolution(), (video::Resolution{480, 270}));
}

TEST(DegradationTest, NeverStepsAboveLadderTop) {
  DegradationController controller;
  Timestamp now = Timestamp::Zero();
  for (int i = 0; i < 500; ++i) {
    controller.OnFrameQp(20.0, now);
    now += TimeDelta::Millis(33);
  }
  EXPECT_EQ(controller.level(), 0u);
}

TEST(DegradationTest, MidRangeQpResetsDwellClocks) {
  DegradationController controller;
  Timestamp now = Timestamp::Zero();
  // Alternate high and mid QP so the dwell never completes.
  for (int i = 0; i < 300; ++i) {
    controller.OnFrameQp(i % 3 == 2 ? 38.0 : 48.0, now);
    now += TimeDelta::Millis(33);
  }
  EXPECT_EQ(controller.level(), 0u);
}

}  // namespace
}  // namespace rave::core
