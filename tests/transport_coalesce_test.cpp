// Packet-train coalescing A/B bit-identity matrix.
//
// The coalesced fast path (pacer trains, inline link serialization chains,
// shared arrival drains stepping time via EventLoop::TryAdvanceTo) and the
// per-packet path (RAVE_NO_COALESCE: every continuation armed as its own
// event) must produce byte-identical SessionResults — summaries, per-frame
// records, timeseries, link/fault/wireless counters, breaker activity,
// logical event counts, and the full (non-wall) metrics snapshot — across
// every scenario family that exercises a train-splitting discontinuity:
// hard faults, wireless/mobility profiles, Gilbert loss, and cross traffic.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common.h"
#include "fault/fault_plan.h"
#include "fault/wireless_profiles.h"
#include "net/cross_traffic.h"
#include "rtc/session.h"
#include "util/time.h"
#include "util/units.h"

namespace rave {
namespace {

// Both runs happen in-process: the knob is read from the environment once
// per EventLoop construction, so toggling it between Session constructions
// selects the path deterministically.
rtc::SessionResult RunWith(const rtc::SessionConfig& config, bool coalesce) {
  if (coalesce) {
    unsetenv("RAVE_NO_COALESCE");
  } else {
    setenv("RAVE_NO_COALESCE", "1", 1);
  }
  rtc::SessionResult result = rtc::RunSession(config);
  unsetenv("RAVE_NO_COALESCE");
  return result;
}

void ExpectIdentical(const rtc::SessionResult& a, const rtc::SessionResult& b) {
  EXPECT_EQ(a.scheme_name, b.scheme_name);
  // Logical event count is part of the determinism contract: a granted time
  // step stands in for exactly one continuation event the per-packet path
  // would have dispatched.
  EXPECT_GT(a.events_executed, 0u);
  EXPECT_EQ(a.events_executed, b.events_executed);

  const metrics::SessionSummary& sa = a.summary;
  const metrics::SessionSummary& sb = b.summary;
  EXPECT_EQ(sa.frames_captured, sb.frames_captured);
  EXPECT_EQ(sa.frames_delivered, sb.frames_delivered);
  EXPECT_EQ(sa.frames_skipped, sb.frames_skipped);
  EXPECT_EQ(sa.frames_dropped_sender, sb.frames_dropped_sender);
  EXPECT_EQ(sa.frames_lost_network, sb.frames_lost_network);
  EXPECT_EQ(sa.latency_mean_ms, sb.latency_mean_ms);
  EXPECT_EQ(sa.latency_p50_ms, sb.latency_p50_ms);
  EXPECT_EQ(sa.latency_p95_ms, sb.latency_p95_ms);
  EXPECT_EQ(sa.latency_p99_ms, sb.latency_p99_ms);
  EXPECT_EQ(sa.latency_max_ms, sb.latency_max_ms);
  EXPECT_EQ(sa.render_latency_mean_ms, sb.render_latency_mean_ms);
  EXPECT_EQ(sa.ssim_mean, sb.ssim_mean);
  EXPECT_EQ(sa.psnr_mean_db, sb.psnr_mean_db);
  EXPECT_EQ(sa.encoded_bitrate_kbps, sb.encoded_bitrate_kbps);
  EXPECT_EQ(sa.total_reencodes, sb.total_reencodes);

  ASSERT_EQ(a.frames.size(), b.frames.size());
  for (size_t i = 0; i < a.frames.size(); ++i) {
    EXPECT_EQ(a.frames[i].frame_id, b.frames[i].frame_id) << "frame " << i;
    EXPECT_EQ(a.frames[i].fate, b.frames[i].fate) << "frame " << i;
    EXPECT_EQ(a.frames[i].qp, b.frames[i].qp) << "frame " << i;
    EXPECT_EQ(a.frames[i].size, b.frames[i].size) << "frame " << i;
    EXPECT_EQ(a.frames[i].complete_time.has_value(),
              b.frames[i].complete_time.has_value())
        << "frame " << i;
    if (a.frames[i].complete_time && b.frames[i].complete_time) {
      EXPECT_EQ(*a.frames[i].complete_time, *b.frames[i].complete_time)
          << "frame " << i;
    }
  }

  ASSERT_EQ(a.timeseries.size(), b.timeseries.size());
  for (size_t i = 0; i < a.timeseries.size(); ++i) {
    const metrics::TimeseriesPoint& pa = a.timeseries[i];
    const metrics::TimeseriesPoint& pb = b.timeseries[i];
    EXPECT_EQ(pa.at, pb.at) << "point " << i;
    EXPECT_EQ(pa.capacity_kbps, pb.capacity_kbps) << "point " << i;
    EXPECT_EQ(pa.bwe_target_kbps, pb.bwe_target_kbps) << "point " << i;
    EXPECT_EQ(pa.encoder_target_kbps, pb.encoder_target_kbps) << "point " << i;
    EXPECT_EQ(pa.acked_kbps, pb.acked_kbps) << "point " << i;
    EXPECT_EQ(pa.pacer_queue_ms, pb.pacer_queue_ms) << "point " << i;
    EXPECT_EQ(pa.link_queue_ms, pb.link_queue_ms) << "point " << i;
    EXPECT_EQ(pa.loss_rate, pb.loss_rate) << "point " << i;
    EXPECT_EQ(pa.last_qp, pb.last_qp) << "point " << i;
    EXPECT_EQ(pa.last_latency_ms, pb.last_latency_ms) << "point " << i;
  }

  // Link counters including the fault/wireless tier: a train that failed to
  // split at an outage, handover, Gilbert transition, or reorder window
  // would shift these before anything else.
  EXPECT_EQ(a.link_stats.packets_delivered, b.link_stats.packets_delivered);
  EXPECT_EQ(a.link_stats.packets_dropped, b.link_stats.packets_dropped);
  EXPECT_EQ(a.link_stats.packets_lost_random,
            b.link_stats.packets_lost_random);
  EXPECT_EQ(a.link_stats.packets_duplicated, b.link_stats.packets_duplicated);
  EXPECT_EQ(a.link_stats.packets_reordered, b.link_stats.packets_reordered);
  EXPECT_EQ(a.link_stats.outages, b.link_stats.outages);
  EXPECT_EQ(a.link_stats.handovers, b.link_stats.handovers);
  EXPECT_EQ(a.link_stats.renegotiations, b.link_stats.renegotiations);
  EXPECT_EQ(a.link_stats.bytes_delivered, b.link_stats.bytes_delivered);
  EXPECT_EQ(a.link_stats.bytes_dropped, b.link_stats.bytes_dropped);

  EXPECT_EQ(a.breaker_stats.opens, b.breaker_stats.opens);
  EXPECT_EQ(a.breaker_stats.pauses, b.breaker_stats.pauses);
  EXPECT_EQ(a.breaker_stats.recoveries, b.breaker_stats.recoveries);
  EXPECT_EQ(a.breaker_stats.time_open, b.breaker_stats.time_open);
  EXPECT_EQ(a.breaker_stats.time_paused, b.breaker_stats.time_paused);

  // Full metrics snapshot, minus wall.* (wall-clock-derived by contract).
  auto deterministic = [](const obs::RegistrySnapshot& snap) {
    std::vector<obs::MetricSnapshot> out;
    for (const obs::MetricSnapshot& m : snap.metrics) {
      if (m.name.rfind("wall.", 0) != 0) out.push_back(m);
    }
    return out;
  };
  const auto ma = deterministic(a.metrics);
  const auto mb = deterministic(b.metrics);
  ASSERT_EQ(ma.size(), mb.size());
  for (size_t i = 0; i < ma.size(); ++i) {
    EXPECT_EQ(ma[i], mb[i]) << "metric " << ma[i].name;
  }
}

void ExpectModesIdentical(rtc::SessionConfig config) {
  const rtc::SessionResult coalesced = RunWith(config, true);
  const rtc::SessionResult per_packet = RunWith(config, false);
  ExpectIdentical(coalesced, per_packet);
}

rtc::SessionConfig BaseConfig(TimeDelta duration, uint64_t seed) {
  return bench::DefaultConfig(rtc::Scheme::kAdaptive, bench::DropTrace(0.5),
                              video::ContentClass::kTalkingHead, duration,
                              seed);
}

TEST(CoalesceIdentityTest, PlainDropTraceBothSchemes) {
  for (rtc::Scheme scheme : rtc::kHeadlineSchemes) {
    SCOPED_TRACE(rtc::ToString(scheme));
    rtc::SessionConfig config =
        bench::DefaultConfig(scheme, bench::DropTrace(0.6),
                             video::ContentClass::kTalkingHead,
                             TimeDelta::Seconds(8), 11);
    ExpectModesIdentical(config);
  }
}

TEST(CoalesceIdentityTest, FaultKindMatrix) {
  struct Case {
    const char* name;
    fault::FaultPlan plan;
  };
  const Timestamp at = Timestamp::Seconds(3);
  const TimeDelta dur = TimeDelta::Millis(800);
  std::vector<Case> cases;
  cases.push_back({"outage", fault::FaultPlan().Outage(at, dur)});
  cases.push_back(
      {"feedback-blackhole", fault::FaultPlan().FeedbackBlackhole(at, dur)});
  cases.push_back({"delay-spike", fault::FaultPlan().DelaySpike(
                                      at, dur, TimeDelta::Millis(120))});
  cases.push_back({"reorder", fault::FaultPlan().ReorderBurst(
                                  at, TimeDelta::Seconds(2), 0.25,
                                  TimeDelta::Millis(30))});
  for (Case& c : cases) {
    SCOPED_TRACE(c.name);
    rtc::SessionConfig config = BaseConfig(TimeDelta::Seconds(8), 23);
    config.faults = std::move(c.plan);
    ExpectModesIdentical(config);
  }
}

TEST(CoalesceIdentityTest, WirelessProfiles) {
  for (const char* name : {"wifi-fade", "lte-handover", "train-commute"}) {
    SCOPED_TRACE(name);
    const fault::WirelessProfile profile =
        fault::MakeWirelessProfile(name, TimeDelta::Seconds(10));
    rtc::SessionConfig config = BaseConfig(TimeDelta::Seconds(10), 37);
    bench::ApplyWirelessProfile(config, profile);
    ExpectModesIdentical(config);
  }
}

TEST(CoalesceIdentityTest, GilbertLoss) {
  rtc::SessionConfig config = BaseConfig(TimeDelta::Seconds(8), 41);
  config.link.loss.gilbert_enabled = true;
  config.link.loss.gilbert_bad_loss = 0.4;
  config.link.loss.gilbert_step = TimeDelta::Millis(5);
  ExpectModesIdentical(config);
}

TEST(CoalesceIdentityTest, CrossTraffic) {
  rtc::SessionConfig config = BaseConfig(TimeDelta::Seconds(8), 43);
  net::CrossTraffic::Config cross;
  cross.rate = DataRate::KilobitsPerSec(900);
  cross.mean_on = TimeDelta::Seconds(2);
  cross.mean_off = TimeDelta::Seconds(2);
  cross.start_on = true;
  config.cross_traffic = cross;
  ExpectModesIdentical(config);
}

}  // namespace
}  // namespace rave
