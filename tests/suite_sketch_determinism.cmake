# Sketch determinism gate: the "sketches" section of BENCH_suite.json —
# bit-exact count/sum/min/max, the percentile ladder, AND the encoded
# sketch blob as hex — must be byte-identical across cache temperature,
# job counts, and batch sizes. All variants share one cache directory:
# variant 1 runs cold (simulate + store), the rest run warm (served from
# disk), so this also proves cached snapshots round-trip the sketches
# bit-exactly through the blob codec.
#
#   cmake -DBINARY=<run_suite> -DOUT=<scratch-dir>
#         -P suite_sketch_determinism.cmake
if(NOT DEFINED BINARY OR NOT DEFINED OUT)
  message(FATAL_ERROR "suite_sketch_determinism.cmake needs -DBINARY/-DOUT")
endif()

file(REMOVE_RECURSE ${OUT})
file(MAKE_DIRECTORY ${OUT}/cache)

# Bench selection: one latency-heavy CDF bench, one fault-matrix bench, and
# the wireless tier — together they merge sketches from every session class.
set(ONLY "fig2_latency_cdf,fig10_outage_recovery,fig12_handover_recovery")

# Variant args are space-separated (a ';' would split the outer list).
set(variants
  "cold_j1_b1|--jobs=1 --batch=1"
  "warm_j8_b16|--jobs=8 --batch=16"
  "warm_j2_b1|--jobs=2 --batch=1")

set(names "")
foreach(variant IN LISTS variants)
  string(REPLACE "|" ";" parts "${variant}")
  list(GET parts 0 name)
  list(GET parts 1 args)
  separate_arguments(args)
  list(APPEND names ${name})
  file(MAKE_DIRECTORY ${OUT}/${name})
  execute_process(
    COMMAND ${BINARY} --cache-dir=${OUT}/cache --out-dir=${OUT}/${name}
            --only=${ONLY} --duration=12 ${args}
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BINARY} (${name}) failed (rc=${rc})")
  endif()

  # Extract exactly the "sketches" section: from its opening bracket up to
  # the closing ']' (sketch entries are single-line objects with no ']'
  # inside, so [^]]* spans the whole section). Deliberately NOT split into a
  # CMake list first: list parsing keeps semicolon-free bracketed runs
  # together, which would glue the section into one element.
  file(READ ${OUT}/${name}/BENCH_suite.json json)
  string(REGEX MATCH "\"sketches\": \\[[^]]*" section "${json}")
  if(section STREQUAL "")
    message(FATAL_ERROR "${name}/BENCH_suite.json holds no \"sketches\" section")
  endif()
  file(WRITE ${OUT}/${name}/sketches_section.txt "${section}")
endforeach()

# Byte-compare every variant against the cold reference.
list(GET names 0 reference)
foreach(name IN LISTS names)
  if(name STREQUAL reference)
    continue()
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUT}/${reference}/sketches_section.txt
            ${OUT}/${name}/sketches_section.txt
    RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
            "\"sketches\" section differs between ${reference} and ${name} "
            "(${OUT}/${reference}/sketches_section.txt vs "
            "${OUT}/${name}/sketches_section.txt) — sketch merge is not "
            "order/jobs/batch/cache independent")
  endif()
endforeach()

# Sanity: the section must actually hold sketches with encoded blobs, or
# the comparison proves nothing.
file(READ ${OUT}/${reference}/sketches_section.txt ref_section)
if(NOT ref_section MATCHES "frame.latency_ms")
  message(FATAL_ERROR "sketches section lost frame.latency_ms")
endif()
if(NOT ref_section MATCHES "\"blob\": \"[0-9a-f]+\"")
  message(FATAL_ERROR "sketches section holds no encoded sketch blobs")
endif()
