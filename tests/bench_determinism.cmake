# Runs a bench binary twice — serial (--jobs=1) and parallel (--jobs=8) —
# and fails unless the outputs are byte-identical. Invoked by ctest (see
# bench/CMakeLists.txt):
#
#   cmake -DBINARY=<path> -DOUT=<output-prefix> [-DEXTRA_ARGS=...]
#         -P bench_determinism.cmake
if(NOT DEFINED BINARY OR NOT DEFINED OUT)
  message(FATAL_ERROR "bench_determinism.cmake needs -DBINARY and -DOUT")
endif()

execute_process(
  COMMAND ${BINARY} --jobs=1 ${EXTRA_ARGS}
  OUTPUT_FILE ${OUT}_serial.txt
  RESULT_VARIABLE serial_rc)
if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "${BINARY} --jobs=1 failed (rc=${serial_rc})")
endif()

execute_process(
  COMMAND ${BINARY} --jobs=8 ${EXTRA_ARGS}
  OUTPUT_FILE ${OUT}_parallel.txt
  RESULT_VARIABLE parallel_rc)
if(NOT parallel_rc EQUAL 0)
  message(FATAL_ERROR "${BINARY} --jobs=8 failed (rc=${parallel_rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${OUT}_serial.txt ${OUT}_parallel.txt
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
          "${BINARY}: output differs between --jobs=1 and --jobs=8 "
          "(${OUT}_serial.txt vs ${OUT}_parallel.txt)")
endif()
