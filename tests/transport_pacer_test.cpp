#include "transport/pacer.h"

#include <gtest/gtest.h>

#include <vector>

namespace rave::transport {
namespace {

struct PacerFixture {
  explicit PacerFixture(Pacer::Config config = {}) {
    pacer = std::make_unique<Pacer>(loop, config, [this](net::Packet&& p) {
      sent.push_back({p, loop.now()});
    });
  }
  EventLoop loop;
  struct Sent {
    net::Packet packet;
    Timestamp at;
  };
  std::vector<Sent> sent;
  std::unique_ptr<Pacer> pacer;
};

std::vector<net::Packet> MakePackets(int count, int64_t bits,
                                     int64_t first_media_seq = 0) {
  std::vector<net::Packet> packets;
  for (int i = 0; i < count; ++i) {
    net::Packet p;
    p.media_seq = first_media_seq + i;
    p.size = DataSize::Bits(bits);
    packets.push_back(p);
  }
  return packets;
}

// Enqueue drains the caller's vector in place; tests hand it a temporary.
void Enqueue(Pacer& pacer, std::vector<net::Packet> packets) {
  pacer.Enqueue(packets);
  EXPECT_TRUE(packets.empty());
}

TEST(PacerTest, DrainsAtConfiguredRate) {
  Pacer::Config config;
  config.initial_rate = DataRate::KilobitsPerSec(1000);
  config.burst = TimeDelta::Zero();
  PacerFixture fx(config);
  Enqueue(*fx.pacer, MakePackets(5, 10'000));
  fx.loop.RunAll();
  ASSERT_EQ(fx.sent.size(), 5u);
  // Packet i leaves at i * 10 ms (10'000 bits at 1 Mbps each).
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(fx.sent[static_cast<size_t>(i)].at, Timestamp::Millis(10 * i));
  }
}

TEST(PacerTest, RateComplianceOverWindow) {
  Pacer::Config config;
  config.initial_rate = DataRate::KilobitsPerSec(800);
  PacerFixture fx(config);
  // Enqueue 2 seconds' worth; after 1 s roughly 800 kb must have left.
  Enqueue(*fx.pacer, MakePackets(200, 9'600));
  fx.loop.RunFor(TimeDelta::Seconds(1));
  int64_t bits = 0;
  for (const auto& s : fx.sent) bits += s.packet.size.bits();
  EXPECT_NEAR(static_cast<double>(bits), 800'000.0, 40'000.0);
}

TEST(PacerTest, BurstAllowsCatchUpAfterIdle) {
  Pacer::Config config;
  config.initial_rate = DataRate::KilobitsPerSec(1000);
  config.burst = TimeDelta::Millis(40);
  PacerFixture fx(config);
  fx.loop.RunFor(TimeDelta::Seconds(1));  // idle: accumulate burst credit
  Enqueue(*fx.pacer, MakePackets(6, 10'000));
  // 40 ms of credit = 40'000 bits = 4 packets immediately.
  size_t immediate = 0;
  for (const auto& s : fx.sent) {
    if (s.at == Timestamp::Seconds(1)) ++immediate;
  }
  EXPECT_EQ(immediate, 5u);  // 4 from credit + 1 at the boundary
  fx.loop.RunAll();
  EXPECT_EQ(fx.sent.size(), 6u);
}

TEST(PacerTest, QueueMetrics) {
  Pacer::Config config;
  config.initial_rate = DataRate::KilobitsPerSec(1000);
  config.burst = TimeDelta::Zero();
  PacerFixture fx(config);
  Enqueue(*fx.pacer, MakePackets(10, 10'000));
  fx.loop.RunFor(TimeDelta::Millis(1));
  // One packet left immediately; 9 remain = 90'000 bits = 90 ms.
  EXPECT_EQ(fx.pacer->queue_packets(), 9u);
  EXPECT_NEAR(fx.pacer->ExpectedQueueTime().ms_float(), 90.0, 2.0);
  fx.loop.RunAll();
  EXPECT_EQ(fx.pacer->queue_size(), DataSize::Zero());
  EXPECT_EQ(fx.pacer->ExpectedQueueTime(), TimeDelta::Zero());
}

TEST(PacerTest, SetPacingRateSpeedsUpDrain) {
  Pacer::Config config;
  config.initial_rate = DataRate::KilobitsPerSec(100);
  config.burst = TimeDelta::Zero();
  PacerFixture fx(config);
  Enqueue(*fx.pacer, MakePackets(10, 10'000));
  fx.loop.RunFor(TimeDelta::Millis(100));  // 1 packet at 100 kbps
  fx.pacer->SetPacingRate(DataRate::MegabitsPerSecF(10.0));
  fx.loop.RunFor(TimeDelta::Millis(20));
  EXPECT_EQ(fx.sent.size(), 10u);
}

TEST(PacerTest, EnqueueFrontJumpsQueue) {
  Pacer::Config config;
  config.initial_rate = DataRate::KilobitsPerSec(1000);
  config.burst = TimeDelta::Zero();
  PacerFixture fx(config);
  Enqueue(*fx.pacer, MakePackets(3, 10'000, /*first_media_seq=*/0));
  fx.loop.RunFor(TimeDelta::Millis(1));  // packet 0 sent
  net::Packet rtx;
  rtx.media_seq = 99;
  rtx.is_retransmission = true;
  rtx.size = DataSize::Bits(5'000);
  fx.pacer->EnqueueFront(rtx);
  fx.loop.RunAll();
  ASSERT_EQ(fx.sent.size(), 4u);
  EXPECT_EQ(fx.sent[1].packet.media_seq, 99);
  EXPECT_EQ(fx.sent[2].packet.media_seq, 1);
}

TEST(PacerTest, SendTimeStamped) {
  PacerFixture fx;
  fx.loop.RunFor(TimeDelta::Millis(7));
  Enqueue(*fx.pacer, MakePackets(1, 1'000));
  fx.loop.RunAll();
  ASSERT_EQ(fx.sent.size(), 1u);
  EXPECT_EQ(fx.sent[0].packet.send_time, Timestamp::Millis(7));
}

TEST(PacerTest, IgnoresNonPositiveRate) {
  PacerFixture fx;
  const DataRate before = fx.pacer->pacing_rate();
  fx.pacer->SetPacingRate(DataRate::Zero());
  EXPECT_EQ(fx.pacer->pacing_rate(), before);
}

}  // namespace
}  // namespace rave::transport
