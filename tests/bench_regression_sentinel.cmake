# Regression sentinel gate, end to end:
#   1. seed a history ledger with `run_suite --history=ledger.jsonl`;
#   2. rerun with `--baseline=ledger.jsonl` — deterministic quality fields
#      must match byte-for-byte, so the clean rerun must exit 0;
#   3. doctor one quality value in the ledger (frame.latency_ms.p99) and
#      assert the rerun now exits non-zero with a verdict naming the
#      regressed metric;
#   4. seed a second ledger record and check the standalone bench_compare
#      agrees (clean diff of the last two records exits 0).
#
#   cmake -DBINARY=<run_suite> -DCOMPARE=<bench_compare> -DOUT=<scratch-dir>
#         -P bench_regression_sentinel.cmake
if(NOT DEFINED BINARY OR NOT DEFINED COMPARE OR NOT DEFINED OUT)
  message(FATAL_ERROR
          "bench_regression_sentinel.cmake needs -DBINARY/-DCOMPARE/-DOUT")
endif()

file(REMOVE_RECURSE ${OUT})
file(MAKE_DIRECTORY ${OUT}/cache)
set(LEDGER ${OUT}/ledger.jsonl)
set(ARGS --cache-dir=${OUT}/cache --only=fig1_timeline --duration=12 --jobs=2)

# 1. Seed the ledger.
file(MAKE_DIRECTORY ${OUT}/seed)
execute_process(
  COMMAND ${BINARY} ${ARGS} --out-dir=${OUT}/seed --history=${LEDGER}
  OUTPUT_QUIET
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "seed run failed (rc=${rc})")
endif()
if(NOT EXISTS ${LEDGER})
  message(FATAL_ERROR "--history did not create ${LEDGER}")
endif()

# 2. Clean rerun against the baseline must exit 0 and print a clean verdict.
file(MAKE_DIRECTORY ${OUT}/clean)
execute_process(
  COMMAND ${BINARY} ${ARGS} --out-dir=${OUT}/clean --baseline=${LEDGER}
  OUTPUT_VARIABLE clean_out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "clean rerun regressed against its own baseline (rc=${rc}):\n"
          "${clean_out}")
endif()
if(NOT clean_out MATCHES "verdict: clean")
  message(FATAL_ERROR "clean rerun printed no clean verdict:\n${clean_out}")
endif()

# 3. Doctor a quality value in the ledger: any byte-level drift in a
# deterministic field must trip the sentinel.
file(READ ${LEDGER} ledger_text)
string(REGEX REPLACE "\"frame.latency_ms.p99\": \"[^\"]*\""
       "\"frame.latency_ms.p99\": \"999999\"" doctored "${ledger_text}")
if(doctored STREQUAL "${ledger_text}")
  message(FATAL_ERROR "ledger holds no frame.latency_ms.p99 field to doctor")
endif()
file(WRITE ${LEDGER} "${doctored}")

file(MAKE_DIRECTORY ${OUT}/regressed)
execute_process(
  COMMAND ${BINARY} ${ARGS} --out-dir=${OUT}/regressed --baseline=${LEDGER}
  OUTPUT_VARIABLE regressed_out
  RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR
          "doctored baseline did NOT trip the sentinel:\n${regressed_out}")
endif()
if(NOT regressed_out MATCHES "REGRESSED")
  message(FATAL_ERROR "no REGRESSED verdict in output:\n${regressed_out}")
endif()
if(NOT regressed_out MATCHES "frame.latency_ms.p99")
  message(FATAL_ERROR
          "verdict does not name the regressed metric:\n${regressed_out}")
endif()

# 4. Standalone bench_compare over a healthy two-record ledger: clean diff
# of the last two records must exit 0.
file(WRITE ${LEDGER} "${ledger_text}")
file(MAKE_DIRECTORY ${OUT}/second)
execute_process(
  COMMAND ${BINARY} ${ARGS} --out-dir=${OUT}/second --history=${LEDGER}
  OUTPUT_QUIET
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "second ledger run failed (rc=${rc})")
endif()
execute_process(
  COMMAND ${COMPARE} --history=${LEDGER}
  OUTPUT_VARIABLE compare_out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "bench_compare flagged a regression between identical runs "
          "(rc=${rc}):\n${compare_out}")
endif()
if(NOT compare_out MATCHES "verdict: clean")
  message(FATAL_ERROR "bench_compare printed no clean verdict:\n${compare_out}")
endif()
