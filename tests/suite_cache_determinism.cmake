# Runs the suite orchestrator twice against one fresh cache directory — a
# cold pass (every session simulated, blobs stored) and a warm pass (every
# session served from disk) — and fails unless every bench's captured output
# is byte-identical between the passes, or the warm pass simulated anything.
# Invoked by ctest (see bench/CMakeLists.txt):
#
#   cmake -DBINARY=<run_suite> -DOUT=<scratch-dir> [-DEXTRA_ARGS=...]
#         -P suite_cache_determinism.cmake
if(NOT DEFINED BINARY OR NOT DEFINED OUT)
  message(FATAL_ERROR "suite_cache_determinism.cmake needs -DBINARY and -DOUT")
endif()

file(REMOVE_RECURSE ${OUT})
file(MAKE_DIRECTORY ${OUT}/cache ${OUT}/cold ${OUT}/warm)

foreach(pass cold warm)
  execute_process(
    COMMAND ${BINARY} --cache-dir=${OUT}/cache --out-dir=${OUT}/${pass}
            ${EXTRA_ARGS}
    OUTPUT_FILE ${OUT}/${pass}/stdout.txt
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BINARY} (${pass} pass) failed (rc=${rc})")
  endif()
endforeach()

# The warm pass must be served entirely from the cache: its suite report
# (whose field order is fixed) must say zero sessions were simulated.
file(READ ${OUT}/warm/BENCH_suite.json warm_json)
if(NOT warm_json MATCHES "\"sessions_computed\": 0, \"memory_hits\"")
  message(FATAL_ERROR
          "warm pass simulated sessions instead of hitting the cache "
          "(${OUT}/warm/BENCH_suite.json)")
endif()

# Byte-identity: every bench's output must not depend on cache state.
file(GLOB cold_outputs ${OUT}/cold/BENCH_*.out)
if(cold_outputs STREQUAL "")
  message(FATAL_ERROR "cold pass produced no BENCH_*.out files in ${OUT}/cold")
endif()
foreach(cold_file IN LISTS cold_outputs)
  get_filename_component(base ${cold_file} NAME)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${cold_file} ${OUT}/warm/${base}
    RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
            "${base}: output differs between cold and warm cache passes "
            "(${cold_file} vs ${OUT}/warm/${base})")
  endif()
endforeach()
