#include "metrics/session_metrics.h"

#include <gtest/gtest.h>

namespace rave::metrics {
namespace {

FrameRecord EncodedRecord(int64_t id, double ssim = 0.95, double qp = 28.0,
                          codec::FrameType type = codec::FrameType::kDelta) {
  FrameRecord r;
  r.frame_id = id;
  r.type = type;
  r.ssim = ssim;
  r.psnr = 40.0;
  r.qp = qp;
  r.size = DataSize::Bits(50'000);
  r.temporal_complexity = 0.5;
  return r;
}

// Convenience: captured at id*33ms, encoded, completed after `latency_ms`.
void AddDeliveredFrame(SessionMetrics& m, int64_t id, double latency_ms,
                       double ssim = 0.95,
                       codec::FrameType type = codec::FrameType::kDelta) {
  const Timestamp capture = Timestamp::Millis(id * 33);
  m.OnFrameCaptured(id, capture);
  m.OnFrameEncoded(EncodedRecord(id, ssim, 28.0, type));
  m.OnFrameCompleted(id, capture + TimeDelta::SecondsF(latency_ms / 1e3));
}

TEST(SessionMetricsTest, LatencyStatistics) {
  SessionMetrics m;
  for (int64_t id = 0; id < 100; ++id) {
    AddDeliveredFrame(m, id, 50.0 + static_cast<double>(id));
  }
  const SessionSummary s = m.Summarize(TimeDelta::Seconds(10));
  EXPECT_EQ(s.frames_captured, 100);
  EXPECT_EQ(s.frames_delivered, 100);
  EXPECT_NEAR(s.latency_mean_ms, 99.5, 0.1);
  EXPECT_NEAR(s.latency_p50_ms, 99.5, 0.6);
  EXPECT_NEAR(s.latency_max_ms, 149.0, 0.1);
  EXPECT_NEAR(s.latency_p95_ms, 144.0, 1.0);
  EXPECT_EQ(s.undelivered_ratio, 0.0);
}

TEST(SessionMetricsTest, FateCounters) {
  SessionMetrics m;
  AddDeliveredFrame(m, 0, 50.0, 0.95, codec::FrameType::kKey);
  m.OnFrameCaptured(1, Timestamp::Millis(33));
  m.OnFrameEncoded([] {
    FrameRecord r = EncodedRecord(1);
    r.fate = FrameFate::kSkippedEncoder;
    return r;
  }());
  m.OnFrameCaptured(2, Timestamp::Millis(66));
  m.OnFrameDroppedAtSender(2);
  m.OnFrameCaptured(3, Timestamp::Millis(99));
  m.OnFrameEncoded(EncodedRecord(3));
  m.OnFrameLost(3);
  m.OnFrameCaptured(4, Timestamp::Millis(132));
  m.OnFrameEncoded(EncodedRecord(4));  // still in flight at session end

  const SessionSummary s = m.Summarize(TimeDelta::Seconds(1));
  EXPECT_EQ(s.frames_captured, 5);
  EXPECT_EQ(s.frames_delivered, 1);
  EXPECT_EQ(s.frames_skipped, 1);
  EXPECT_EQ(s.frames_dropped_sender, 1);
  EXPECT_EQ(s.frames_lost_network, 1);
  EXPECT_NEAR(s.undelivered_ratio, 0.8, 1e-9);
}

TEST(SessionMetricsTest, EncodedSsimIncludesUndeliveredEncodes) {
  SessionMetrics m;
  AddDeliveredFrame(m, 0, 50.0, 0.90, codec::FrameType::kKey);
  // Encoded but lost: still counts toward encoder-side quality.
  m.OnFrameCaptured(1, Timestamp::Millis(33));
  m.OnFrameEncoded(EncodedRecord(1, 0.80));
  m.OnFrameLost(1);
  const SessionSummary s = m.Summarize(TimeDelta::Seconds(1));
  EXPECT_NEAR(s.encoded_ssim_mean, 0.85, 1e-9);
  // Delivered-only mean sees just the first frame.
  EXPECT_NEAR(s.ssim_mean, 0.90, 1e-9);
}

TEST(SessionMetricsTest, LossBreaksDecodabilityUntilKeyframe) {
  SessionMetrics m;
  AddDeliveredFrame(m, 0, 50.0, 0.95, codec::FrameType::kKey);
  // Frame 1 lost in the network.
  m.OnFrameCaptured(1, Timestamp::Millis(33));
  m.OnFrameEncoded(EncodedRecord(1));
  m.OnFrameLost(1);
  // Frames 2-3 delivered but undecodable (reference broken).
  AddDeliveredFrame(m, 2, 50.0, 0.99);
  AddDeliveredFrame(m, 3, 50.0, 0.99);
  // Frame 4: the PLI keyframe restores decodability.
  AddDeliveredFrame(m, 4, 50.0, 0.93, codec::FrameType::kKey);
  const SessionSummary s = m.Summarize(TimeDelta::Seconds(1));
  // Delivered-and-decodable SSIM mean: frames 0 and 4 only.
  EXPECT_NEAR(s.ssim_mean, 0.94, 1e-9);
  // Displayed SSIM decayed during the outage, so it is below the encoded
  // quality of the displayed frames.
  EXPECT_LT(s.displayed_ssim_mean, 0.94);
}

TEST(SessionMetricsTest, DisplayedSsimDecaysDuringFreeze) {
  SessionMetrics m;
  AddDeliveredFrame(m, 0, 50.0, 0.95, codec::FrameType::kKey);
  for (int64_t id = 1; id <= 10; ++id) {
    m.OnFrameCaptured(id, Timestamp::Millis(id * 33));
    FrameRecord r = EncodedRecord(id);
    r.fate = FrameFate::kSkippedEncoder;
    r.temporal_complexity = 1.0;
    m.OnFrameEncoded(r);
  }
  const SessionSummary s = m.Summarize(TimeDelta::Seconds(1));
  // First frame 0.95; then decay 0.02/frame for 10 frames.
  const double expected =
      (0.95 + 0.93 + 0.91 + 0.89 + 0.87 + 0.85 + 0.83 + 0.81 + 0.79 + 0.77 +
       0.75) /
      11.0;
  EXPECT_NEAR(s.displayed_ssim_mean, expected, 1e-9);
}

TEST(SessionMetricsTest, EncodedBitrateFromTotalBits) {
  SessionMetrics m;
  for (int64_t id = 0; id < 30; ++id) {
    AddDeliveredFrame(m, id, 40.0);  // 50'000 bits each
  }
  const SessionSummary s = m.Summarize(TimeDelta::Seconds(1));
  EXPECT_NEAR(s.encoded_bitrate_kbps, 1500.0, 1.0);
}

TEST(SessionMetricsTest, TimeseriesStored) {
  SessionMetrics m;
  TimeseriesPoint p;
  p.at = Timestamp::Millis(100);
  p.capacity_kbps = 2500;
  m.AddTimeseriesPoint(p);
  ASSERT_EQ(m.timeseries().size(), 1u);
  EXPECT_EQ(m.timeseries()[0].capacity_kbps, 2500);
}

TEST(SessionMetricsTest, DeliveredLatenciesVector) {
  SessionMetrics m;
  AddDeliveredFrame(m, 0, 42.0);
  m.OnFrameCaptured(1, Timestamp::Millis(33));
  const auto latencies = m.DeliveredLatenciesMs();
  ASSERT_EQ(latencies.size(), 1u);
  EXPECT_NEAR(latencies[0], 42.0, 1e-9);
}

TEST(SessionMetricsTest, UnknownFrameIdsIgnored) {
  SessionMetrics m;
  m.OnFrameCompleted(99, Timestamp::Seconds(1));
  m.OnFrameLost(98);
  m.OnFrameDroppedAtSender(97);
  const SessionSummary s = m.Summarize(TimeDelta::Seconds(1));
  EXPECT_EQ(s.frames_captured, 0);
}

}  // namespace
}  // namespace rave::metrics
