// Kernel-equivalence tests for src/simd (satellite of the batched-stepper
// PR): each batched kernel must match its scalar reference bit-for-bit over
// large randomized inputs — denormals, specials and fast/slow boundary
// values included — at every compiled-in SIMD level, and the scalar
// reference must stay within a few ulp of libm over the simulator's domain.
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "simd/vmath.h"
#include "util/rng.h"

namespace rave::simd {
namespace {

constexpr size_t kRandomCount = 10000;
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kDenormMin = std::numeric_limits<double>::denorm_min();

/// Restores the dispatch level on scope exit so a failing test cannot
/// poison the level for the rest of the suite.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level level) : saved_(ActiveLevel()) { SetLevel(level); }
  ~ScopedLevel() { SetLevel(saved_); }

 private:
  Level saved_;
};

/// Edge inputs every unary kernel must handle: specials, denormals, and
/// values straddling each fast-path boundary.
std::vector<double> EdgeInputs() {
  return {
      0.0,      -0.0,      1.0,        -1.0,      kInf,     -kInf,
      kNan,     kDenormMin, -kDenormMin, 2.2e-308, -2.2e-308,
      1.5e-308,  // denormal-adjacent normal
      0x1p-1022, 0x1p-1021, 0x1p-1074,
      1023.0,   1023.5,    1024.0,     1024.5,    -1021.0,  -1021.5,
      -1022.0,  -1074.0,   -1075.0,    -1075.5,   -1076.0,
      std::sqrt(2.0), std::nextafter(std::sqrt(2.0), 0.0),
      std::numeric_limits<double>::max(), std::numeric_limits<double>::min(),
      0.5,      2.0,       1e-30,      1e30,      0.9999999999999999,
      1.0000000000000002,
  };
}

/// Random positive values log-uniform across the full normal range plus a
/// slice of the denormals.
std::vector<double> RandomPositive(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<double> v;
  v.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (i % 97 == 0) {
      // Random denormal.
      v.push_back(std::bit_cast<double>(
          static_cast<uint64_t>(rng.Next() & 0xFFFFFFFFFFFFFull)));
    } else {
      v.push_back(std::exp2(rng.NextDouble() * 2040.0 - 1020.0));
    }
  }
  return v;
}

/// Random exponents spanning the interesting exp2 range (incl. overflow
/// and underflow tails).
std::vector<double> RandomExponents(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<double> v;
  v.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    v.push_back(rng.NextDouble() * 2400.0 - 1200.0);
  }
  return v;
}

double UlpDiff(double a, double b) {
  if (a == b) return 0.0;
  const double ulp = std::ldexp(1.0, std::ilogb(b) - 52);
  return std::fabs(a - b) / ulp;
}

void ExpectBitEqual(const std::vector<double>& scalar,
                    const std::vector<double>& vec,
                    const std::vector<double>& inputs, const char* kernel) {
  ASSERT_EQ(scalar.size(), vec.size());
  for (size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(scalar[i]), std::bit_cast<uint64_t>(vec[i]))
        << kernel << " lane " << i << " input " << inputs[i] << ": scalar "
        << scalar[i] << " vs vector " << vec[i];
    if (std::bit_cast<uint64_t>(scalar[i]) != std::bit_cast<uint64_t>(vec[i]))
      return;  // one detailed failure is enough
  }
}

using Unary = void (*)(const double*, double*, size_t);

void CheckUnaryBitIdentity(Unary kernel, const std::vector<double>& inputs,
                           const char* name) {
  std::vector<double> scalar(inputs.size());
  std::vector<double> vec(inputs.size());
  {
    ScopedLevel force(Level::kScalar);
    kernel(inputs.data(), scalar.data(), inputs.size());
  }
  {
    ScopedLevel force(Level::kAvx2);
    if (ActiveLevel() != Level::kAvx2) {
      GTEST_SKIP() << "AVX2 unavailable; scalar-only build or CPU";
    }
    kernel(inputs.data(), vec.data(), inputs.size());
  }
  ExpectBitEqual(scalar, vec, inputs, name);
}

TEST(SimdDispatch, ParseLevel) {
  Level level;
  EXPECT_TRUE(ParseLevel("off", &level));
  EXPECT_EQ(level, Level::kScalar);
  EXPECT_TRUE(ParseLevel("Scalar", &level));
  EXPECT_EQ(level, Level::kScalar);
  EXPECT_TRUE(ParseLevel("AVX2", &level));
  EXPECT_EQ(level, Level::kAvx2);
  EXPECT_TRUE(ParseLevel("auto", &level));
  EXPECT_EQ(level, Level::kAvx2);
  EXPECT_FALSE(ParseLevel("", &level));
  EXPECT_FALSE(ParseLevel("avx512", &level));
  EXPECT_FALSE(ParseLevel(nullptr, &level));
}

TEST(SimdDispatch, SetLevelClampsToDetected) {
  ScopedLevel restore(ActiveLevel());
  EXPECT_EQ(SetLevel(Level::kScalar), Level::kScalar);
  const Level granted = SetLevel(Level::kAvx2);
  EXPECT_EQ(granted, DetectedLevel());
  EXPECT_EQ(ActiveLevel(), granted);
}

TEST(SimdVmath, Exp2MatchesLibmWithinUlp) {
  auto inputs = RandomExponents(0x5EED0001, kRandomCount);
  for (double x : inputs) {
    const double got = Exp2S(x);
    const double want = std::exp2(x);
    if (want == 0.0 || std::isinf(want) ||
        std::fpclassify(want) == FP_SUBNORMAL) {
      // Underflow/overflow/subnormal: same class is enough (the slow path
      // rounds via ldexp, identically everywhere).
      EXPECT_EQ(std::fpclassify(got), std::fpclassify(want)) << "x=" << x;
    } else {
      EXPECT_LE(UlpDiff(got, want), 4.0) << "x=" << x;
    }
  }
}

TEST(SimdVmath, Log2MatchesLibmWithinUlp) {
  auto inputs = RandomPositive(0x5EED0002, kRandomCount);
  for (double x : inputs) {
    const double got = Log2S(x);
    const double want = std::log2(x);
    if (want == 0.0) {
      EXPECT_EQ(got, want) << "x=" << x;
    } else {
      // log2 near 1 loses absolute precision in any non-fused scheme;
      // bound the absolute error by ulp(e)+poly error there.
      EXPECT_LE(std::fabs(got - want),
                std::max(4.0 * std::fabs(want) * 1e-16, 1e-15))
          << "x=" << x;
    }
  }
}

TEST(SimdVmath, ExpAndPowMatchLibm) {
  Rng rng(0x5EED0003);
  for (size_t i = 0; i < kRandomCount; ++i) {
    const double x = rng.NextDouble() * 1400.0 - 700.0;
    const double ew = std::exp(x);
    const double eg = ExpS(x);
    if (ew == 0.0 || std::isinf(ew) || std::fpclassify(ew) == FP_SUBNORMAL) {
      EXPECT_EQ(std::fpclassify(eg), std::fpclassify(ew)) << "x=" << x;
    } else {
      // The single multiply in the x*log2e reduction (plus the rounded
      // log2e constant itself) costs absolute argument error proportional
      // to |x|, hence ~1.5*|x| ulp of relative result error. Tight for the
      // simulator's O(1) exponents (covered below), linear at the extremes.
      EXPECT_LE(UlpDiff(eg, ew), 8.0 + 1.5 * std::fabs(x)) << "x=" << x;
    }

    const double small = rng.NextDouble() * 8.0 - 4.0;  // lognormal-noise range
    EXPECT_LE(UlpDiff(ExpS(small), std::exp(small)), 8.0) << "x=" << small;

    // Simulator-domain pow: bases spanning qscale/complexity/ratio ranges,
    // exponents like gamma, 1/gamma, ssim_beta, qcomp.
    const double base = std::exp2(rng.NextDouble() * 60.0 - 30.0);
    const double exponent = rng.NextDouble() * 6.0 - 3.0;
    const double pw = std::pow(base, exponent);
    const double pg = PowS(base, exponent);
    // Same error model: ~1 ulp of log2(base) amplified by the exponent and
    // the magnitude of t = exponent*log2(base).
    const double t = std::fabs(exponent * std::log2(base));
    EXPECT_LE(UlpDiff(pg, pw), 16.0 + 1.5 * t)
        << "base=" << base << " exp=" << exponent;
  }
}

TEST(SimdVmath, PowSpecialCases) {
  EXPECT_EQ(PowS(2.0, 0.0), 1.0);
  EXPECT_EQ(PowS(0.0, 0.0), 1.0);
  EXPECT_EQ(PowS(kNan, 0.0), 1.0);
  EXPECT_EQ(PowS(1.0, kNan), 1.0);
  EXPECT_EQ(PowS(1.0, kInf), 1.0);
  EXPECT_EQ(PowS(0.0, 2.0), 0.0);
  EXPECT_EQ(PowS(0.0, -2.0), kInf);
  EXPECT_EQ(PowS(kInf, 2.0), kInf);
  EXPECT_EQ(PowS(kInf, -2.0), 0.0);
  EXPECT_EQ(PowS(2.0, kInf), kInf);
  EXPECT_EQ(PowS(2.0, -kInf), 0.0);
  EXPECT_EQ(PowS(0.5, kInf), 0.0);
  EXPECT_TRUE(std::isnan(PowS(-2.0, 0.5)));
  EXPECT_TRUE(std::isnan(PowS(kNan, 1.0)));
  EXPECT_TRUE(std::isnan(PowS(2.0, kNan)));
}

TEST(SimdVmath, Exp2BitIdenticalAcrossLevels) {
  auto inputs = RandomExponents(0x5EED0004, kRandomCount);
  auto edges = EdgeInputs();
  inputs.insert(inputs.end(), edges.begin(), edges.end());
  CheckUnaryBitIdentity(&Exp2, inputs, "Exp2");
}

TEST(SimdVmath, Log2BitIdenticalAcrossLevels) {
  auto inputs = RandomPositive(0x5EED0005, kRandomCount);
  auto edges = EdgeInputs();
  inputs.insert(inputs.end(), edges.begin(), edges.end());
  CheckUnaryBitIdentity(&Log2, inputs, "Log2");
}

TEST(SimdVmath, ExpBitIdenticalAcrossLevels) {
  auto inputs = RandomExponents(0x5EED0006, kRandomCount);
  auto edges = EdgeInputs();
  inputs.insert(inputs.end(), edges.begin(), edges.end());
  CheckUnaryBitIdentity(&Exp, inputs, "Exp");
}

TEST(SimdVmath, PowBitIdenticalAcrossLevels) {
  auto bases = RandomPositive(0x5EED0007, kRandomCount);
  auto edges = EdgeInputs();
  bases.insert(bases.end(), edges.begin(), edges.end());
  Rng rng(0x5EED0008);
  std::vector<double> exps;
  exps.reserve(bases.size());
  for (size_t i = 0; i < bases.size(); ++i) {
    switch (i % 7) {
      case 0: exps.push_back(0.0); break;
      case 1: exps.push_back(kInf); break;
      case 2: exps.push_back(-kInf); break;
      case 3: exps.push_back(kNan); break;
      default: exps.push_back(rng.NextDouble() * 8.0 - 4.0); break;
    }
  }
  std::vector<double> scalar(bases.size());
  std::vector<double> vec(bases.size());
  {
    ScopedLevel force(Level::kScalar);
    Pow(bases.data(), exps.data(), scalar.data(), bases.size());
  }
  {
    ScopedLevel force(Level::kAvx2);
    if (ActiveLevel() != Level::kAvx2) {
      GTEST_SKIP() << "AVX2 unavailable; scalar-only build or CPU";
    }
    Pow(bases.data(), exps.data(), vec.data(), bases.size());
  }
  ExpectBitEqual(scalar, vec, bases, "Pow");
}

TEST(SimdVmath, PowScalarExpMatchesPow) {
  auto bases = RandomPositive(0x5EED0009, 1000);
  const double y = 1.0 / 1.2;  // the ABR predictor's 1/gamma
  std::vector<double> broadcast(bases.size(), y);
  std::vector<double> a(bases.size());
  std::vector<double> b(bases.size());
  for (Level level : {Level::kScalar, Level::kAvx2}) {
    ScopedLevel force(level);
    if (level == Level::kAvx2 && ActiveLevel() != Level::kAvx2) continue;
    Pow(bases.data(), broadcast.data(), a.data(), bases.size());
    PowScalarExp(bases.data(), y, b.data(), bases.size());
    ExpectBitEqual(a, b, bases, "PowScalarExp");
  }
}

TEST(SimdVmath, SingleValueFormsMatchBatched) {
  auto inputs = RandomExponents(0x5EED000A, 1000);
  std::vector<double> batched(inputs.size());
  ScopedLevel force(Level::kScalar);
  Exp2(inputs.data(), batched.data(), inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(Exp2S(inputs[i])),
              std::bit_cast<uint64_t>(batched[i]));
  }
}

TEST(SimdKernels, FitSlopeMatchesDirectRegression) {
  // A perfectly linear series recovers its slope almost exactly.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(5.0 * i);
    y.push_back(3.25 * x.back() + 7.0);
  }
  EXPECT_NEAR(FitSlope(x.data(), y.data(), x.size()), 3.25, 1e-12);
  // Degenerate x (zero variance) yields 0.
  std::fill(x.begin(), x.end(), 2.0);
  EXPECT_EQ(FitSlope(x.data(), y.data(), x.size()), 0.0);
}

TEST(SimdKernels, FitSlopeLanesBitIdenticalAcrossLevels) {
  constexpr size_t kWindow = 20;
  constexpr size_t kLanes = 23;  // forces both vector groups and tail lanes
  constexpr size_t kStride = 24;
  Rng rng(0x5EED000B);
  std::vector<double> xs(kWindow * kStride);
  std::vector<double> ys(kWindow * kStride);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.NextDouble() * 100.0;
    ys[i] = rng.NextDouble() * 10.0 - 5.0;
  }
  // Make one lane degenerate to cover the masked-zero branch.
  for (size_t i = 0; i < kWindow; ++i) xs[i * kStride + 3] = 42.0;

  std::vector<double> per_lane(kLanes);
  for (size_t lane = 0; lane < kLanes; ++lane) {
    std::vector<double> lx(kWindow);
    std::vector<double> ly(kWindow);
    for (size_t i = 0; i < kWindow; ++i) {
      lx[i] = xs[i * kStride + lane];
      ly[i] = ys[i * kStride + lane];
    }
    per_lane[lane] = FitSlope(lx.data(), ly.data(), kWindow);
  }

  for (Level level : {Level::kScalar, Level::kAvx2}) {
    ScopedLevel force(level);
    if (level == Level::kAvx2 && ActiveLevel() != Level::kAvx2) continue;
    std::vector<double> out(kLanes, kNan);
    FitSlopeLanes(xs.data(), ys.data(), kWindow, kStride, kLanes, out.data());
    ExpectBitEqual(per_lane, out, per_lane, ToString(level));
  }
  EXPECT_EQ(per_lane[3], 0.0);
}

}  // namespace
}  // namespace rave::simd
