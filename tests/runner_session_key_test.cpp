// SessionKey correctness: the cache's entire safety story reduces to "equal
// configs hash equal, different configs hash different", so these tests walk
// every config dimension a bench actually varies and assert key sensitivity.
#include "runner/session_key.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common.h"
#include "fault/fault_plan.h"

namespace rave {
namespace {

rtc::SessionConfig BaseConfig() {
  return bench::DefaultConfig(rtc::Scheme::kAdaptive, bench::DropTrace(0.5),
                              video::ContentClass::kTalkingHead,
                              TimeDelta::Seconds(20), 7);
}

TEST(SessionKeyTest, DeterministicAcrossCalls) {
  const auto config = BaseConfig();
  const runner::SessionKey a = runner::ComputeSessionKey(config);
  const runner::SessionKey b = runner::ComputeSessionKey(config);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == runner::SessionKey{});  // all-zero key would be suspicious
}

TEST(SessionKeyTest, CopiesHashEqual) {
  const auto config = BaseConfig();
  const rtc::SessionConfig copy = config;
  EXPECT_EQ(runner::ComputeSessionKey(config), runner::ComputeSessionKey(copy));
}

TEST(SessionKeyTest, ToHexIs32LowercaseHexChars) {
  const runner::SessionKey key = runner::ComputeSessionKey(BaseConfig());
  const std::string hex = key.ToHex();
  ASSERT_EQ(hex.size(), 32u);
  for (char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
  }
  // hi is emitted first, big-endian within the half.
  const runner::SessionKey probe{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(probe.ToHex(), "0123456789abcdeffedcba9876543210");
}

// Every dimension a bench varies must change the key. Collect the keys in a
// set: any collision between variants is a test failure.
TEST(SessionKeyTest, EveryVariedFieldChangesTheKey) {
  std::set<std::string> keys;
  auto add = [&keys](const rtc::SessionConfig& config) {
    const std::string hex = runner::ComputeSessionKey(config).ToHex();
    EXPECT_TRUE(keys.insert(hex).second) << "key collision: " << hex;
  };

  add(BaseConfig());

  for (rtc::Scheme scheme : rtc::kAllSchemes) {
    if (scheme == rtc::Scheme::kAdaptive) continue;
    auto config = BaseConfig();
    config.scheme = scheme;
    add(config);
  }
  for (video::ContentClass content : video::kAllContentClasses) {
    if (content == video::ContentClass::kTalkingHead) continue;
    auto config = BaseConfig();
    config.source.content = content;
    add(config);
  }
  {
    auto config = BaseConfig();
    config.seed = 8;
    add(config);
  }
  {
    auto config = BaseConfig();
    config.duration = TimeDelta::Seconds(21);
    add(config);
  }
  {
    auto config = BaseConfig();
    config.link.trace = bench::DropTrace(0.51);
    add(config);
  }
  {
    auto config = BaseConfig();
    config.link.propagation = config.link.propagation + TimeDelta::Millis(1);
    add(config);
  }
  {
    auto config = BaseConfig();
    config.link.loss.random_loss = config.link.loss.random_loss + 0.001;
    add(config);
  }
  {
    auto config = BaseConfig();
    config.source.fps = config.source.fps + 1;
    add(config);
  }
  {
    auto config = BaseConfig();
    config.initial_rate = config.initial_rate + DataRate::KilobitsPerSec(1);
    add(config);
  }
  {
    auto config = BaseConfig();
    config.enable_fec = !config.enable_fec;
    add(config);
  }
  {
    auto config = BaseConfig();
    config.faults =
        fault::FaultPlan().Outage(Timestamp::Seconds(5), TimeDelta::Seconds(1));
    add(config);
  }
  {
    auto config = BaseConfig();
    config.faults = fault::FaultPlan().DelaySpike(
        Timestamp::Seconds(5), TimeDelta::Seconds(1), TimeDelta::Millis(150));
    add(config);
  }

  // --- wireless tier: every new field must reach the key ---
  {
    auto config = BaseConfig();
    config.wireless_profile = "wifi-fade";
    add(config);
  }
  {
    auto config = BaseConfig();
    config.wireless_profile = "lte-handover";
    add(config);
  }
  {
    auto config = BaseConfig();
    config.link.loss.gilbert_step = TimeDelta::Millis(5);
    add(config);
  }
  // A handover event and each of its cell parameters.
  auto handover = [](DataRate rate, TimeDelta owd,
                     std::optional<net::LossModel> loss = std::nullopt) {
    auto config = BaseConfig();
    config.faults = fault::FaultPlan().Handover(
        Timestamp::Seconds(5), TimeDelta::Millis(200), rate, owd,
        std::move(loss));
    return config;
  };
  add(handover(DataRate::KilobitsPerSec(900), TimeDelta::Millis(60)));
  add(handover(DataRate::KilobitsPerSec(901), TimeDelta::Millis(60)));
  add(handover(DataRate::KilobitsPerSec(900), TimeDelta::Millis(61)));
  {
    net::LossModel loss;
    loss.random_loss = 0.01;
    add(handover(DataRate::KilobitsPerSec(900), TimeDelta::Millis(60), loss));
    loss.random_loss = 0.02;
    add(handover(DataRate::KilobitsPerSec(900), TimeDelta::Millis(60), loss));
    loss.gilbert_enabled = true;
    add(handover(DataRate::KilobitsPerSec(900), TimeDelta::Millis(60), loss));
    loss.gilbert_step = TimeDelta::Millis(7);
    add(handover(DataRate::KilobitsPerSec(900), TimeDelta::Millis(60), loss));
    loss.seed = 12345;
    add(handover(DataRate::KilobitsPerSec(900), TimeDelta::Millis(60), loss));
  }
  {
    auto config = BaseConfig();
    config.faults = fault::FaultPlan().Renegotiate(
        Timestamp::Seconds(5), TimeDelta::Seconds(2),
        DataRate::KilobitsPerSec(1200));
    add(config);
  }
  {
    auto config = BaseConfig();
    config.faults = fault::FaultPlan().Renegotiate(
        Timestamp::Seconds(5), TimeDelta::Seconds(2),
        DataRate::KilobitsPerSec(1201));
    add(config);
  }
}

// The trace contributes through its full step list, not its address: two
// distinct Interned instances with identical steps must hash identically.
TEST(SessionKeyTest, EqualTracesHashEqualAcrossInstances) {
  auto a = BaseConfig();
  auto b = BaseConfig();
  a.link.trace = net::CapacityTrace::StepDrop(DataRate::KilobitsPerSec(2500),
                                              DataRate::KilobitsPerSec(1000),
                                              Timestamp::Seconds(10));
  b.link.trace = net::CapacityTrace::StepDrop(DataRate::KilobitsPerSec(2500),
                                              DataRate::KilobitsPerSec(1000),
                                              Timestamp::Seconds(10));
  EXPECT_NE(&*a.link.trace, &*b.link.trace);
  EXPECT_EQ(runner::ComputeSessionKey(a), runner::ComputeSessionKey(b));
}

TEST(SessionKeyTest, HashBytesSeedAndContentSensitivity) {
  const uint8_t data[] = {1, 2, 3, 4, 5};
  const uint8_t tweaked[] = {1, 2, 3, 4, 6};
  const auto a = runner::HashBytes(data, sizeof(data), 0);
  EXPECT_EQ(a, runner::HashBytes(data, sizeof(data), 0));
  EXPECT_FALSE(a == runner::HashBytes(data, sizeof(data), 1));
  EXPECT_FALSE(a == runner::HashBytes(tweaked, sizeof(tweaked), 0));
  EXPECT_FALSE(a == runner::HashBytes(data, sizeof(data) - 1, 0));
}

TEST(SessionKeyTest, StdHashFoldsBothHalves) {
  const std::hash<runner::SessionKey> h;
  EXPECT_NE(h({1, 0}), h({2, 0}));
  EXPECT_NE(h({0, 1}), h({0, 2}));
}

}  // namespace
}  // namespace rave
