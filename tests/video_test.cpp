#include <gtest/gtest.h>

#include "video/content_model.h"
#include "video/video_source.h"

namespace rave::video {
namespace {

TEST(ContentModelTest, ClassNames) {
  EXPECT_EQ(ToString(ContentClass::kTalkingHead), "talking-head");
  EXPECT_EQ(ToString(ContentClass::kScreenShare), "screen-share");
  EXPECT_EQ(ToString(ContentClass::kGaming), "gaming");
  EXPECT_EQ(ToString(ContentClass::kSports), "sports");
}

// Average complexity per class over many frames.
struct ClassStats {
  double spatial = 0.0;
  double temporal = 0.0;
  int scene_changes = 0;
};

ClassStats Collect(ContentClass c, int frames, uint64_t seed = 11) {
  ContentModel model(c, Rng(seed));
  ClassStats stats;
  const TimeDelta interval = TimeDelta::SecondsF(1.0 / 30.0);
  for (int i = 0; i < frames; ++i) {
    const auto s = model.NextFrame(interval);
    stats.spatial += s.spatial / frames;
    stats.temporal += s.temporal / frames;
    if (s.scene_change) ++stats.scene_changes;
  }
  return stats;
}

TEST(ContentModelTest, SportsHasMoreMotionThanTalkingHead) {
  const ClassStats sports = Collect(ContentClass::kSports, 20'000);
  const ClassStats talking = Collect(ContentClass::kTalkingHead, 20'000);
  EXPECT_GT(sports.temporal, 2.0 * talking.temporal);
}

TEST(ContentModelTest, ScreenShareIsNearStatic) {
  const ClassStats screen = Collect(ContentClass::kScreenShare, 20'000);
  EXPECT_LT(screen.temporal, 0.25);
}

TEST(ContentModelTest, SceneChangesOccurAtRoughlyConfiguredRate) {
  // Screen share: mean interval 8 s -> ~75 changes in 600 s of frames.
  const int frames = 18'000;  // 600 s at 30 fps
  const ClassStats screen = Collect(ContentClass::kScreenShare, frames);
  EXPECT_GT(screen.scene_changes, 40);
  EXPECT_LT(screen.scene_changes, 120);
  // Talking head: mean 45 s -> ~13.
  const ClassStats talking = Collect(ContentClass::kTalkingHead, frames);
  EXPECT_LT(talking.scene_changes, 30);
  EXPECT_GT(talking.scene_changes, 3);
}

TEST(ContentModelTest, SceneChangeSpikesTemporalComplexity) {
  ContentModel model(ContentClass::kScreenShare, Rng(3));
  const TimeDelta interval = TimeDelta::SecondsF(1.0 / 30.0);
  double before = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    const auto s = model.NextFrame(interval);
    if (s.scene_change) {
      EXPECT_GT(s.temporal, 3.0 * std::max(before, 0.02));
      return;
    }
    before = s.temporal;
  }
  FAIL() << "no scene change observed";
}

TEST(ContentModelTest, ComplexityAlwaysPositive) {
  for (ContentClass c : kAllContentClasses) {
    ContentModel model(c, Rng(5));
    for (int i = 0; i < 5000; ++i) {
      const auto s = model.NextFrame(TimeDelta::Millis(33));
      EXPECT_GT(s.spatial, 0.0) << ToString(c);
      EXPECT_GT(s.temporal, 0.0) << ToString(c);
    }
  }
}

TEST(VideoSourceTest, FrameIntervalFromFps) {
  VideoSource source({.fps = 25.0});
  EXPECT_EQ(source.frame_interval().ms(), 40);
}

TEST(VideoSourceTest, MonotoneFrameIdsAndTimestamps) {
  VideoSource source({});
  for (int i = 0; i < 100; ++i) {
    const RawFrame f = source.CaptureFrame(Timestamp::Millis(i * 33));
    EXPECT_EQ(f.frame_id, i);
    EXPECT_EQ(f.capture_time, Timestamp::Millis(i * 33));
  }
  EXPECT_EQ(source.frames_captured(), 100);
}

TEST(VideoSourceTest, DeterministicForSameSeed) {
  VideoSourceConfig config;
  config.seed = 77;
  VideoSource a(config);
  VideoSource b(config);
  for (int i = 0; i < 500; ++i) {
    const RawFrame fa = a.CaptureFrame(Timestamp::Zero());
    const RawFrame fb = b.CaptureFrame(Timestamp::Zero());
    EXPECT_DOUBLE_EQ(fa.spatial_complexity, fb.spatial_complexity);
    EXPECT_DOUBLE_EQ(fa.temporal_complexity, fb.temporal_complexity);
    EXPECT_EQ(fa.scene_change, fb.scene_change);
  }
}

TEST(VideoSourceTest, ResolutionSwitchAppliesToNextFrame) {
  VideoSource source({});
  EXPECT_EQ(source.CaptureFrame(Timestamp::Zero()).resolution,
            (Resolution{1280, 720}));
  source.SetResolution({640, 360});
  const RawFrame f = source.CaptureFrame(Timestamp::Zero());
  EXPECT_EQ(f.resolution, (Resolution{640, 360}));
  EXPECT_EQ(f.resolution.pixels(), 640 * 360);
}

}  // namespace
}  // namespace rave::video
