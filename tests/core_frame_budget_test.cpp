#include "core/frame_budget.h"

#include <gtest/gtest.h>

namespace rave::core {
namespace {

NetworkState MakeState(int64_t capacity_kbps, int64_t backlog_bits = 0) {
  NetworkState s;
  s.capacity = DataRate::KilobitsPerSec(capacity_kbps);
  s.backlog = DataSize::Bits(backlog_bits);
  s.queue_delay = s.backlog / s.capacity;
  return s;
}

TEST(FrameBudgetTest, SteadyStateBudgetIsCapacityPerFrame) {
  FrameBudgetAllocator allocator;
  const FrameBudget b = allocator.Allocate(MakeState(1500), false,
                                           codec::FrameType::kDelta, 0);
  EXPECT_FALSE(b.skip);
  EXPECT_NEAR(static_cast<double>(b.target.bits()), 1'500'000.0 / 30.0, 100.0);
  EXPECT_NEAR(b.cap / b.target, 1.5, 0.01);
}

TEST(FrameBudgetTest, DropModeBudgetsWithHeadroomAndTightCap) {
  FrameBudgetAllocator allocator;
  const FrameBudget b = allocator.Allocate(MakeState(1500), true,
                                           codec::FrameType::kDelta, 0);
  EXPECT_NEAR(static_cast<double>(b.target.bits()),
              0.85 * 1'500'000.0 / 30.0, 100.0);
  EXPECT_NEAR(b.cap / b.target, 1.05, 0.01);
}

TEST(FrameBudgetTest, BacklogWithinAllowanceIsFree) {
  FrameBudgetAllocator allocator;
  // 50 ms allowance at 1500 kbps = 75'000 bits.
  const FrameBudget with = allocator.Allocate(MakeState(1500, 70'000), false,
                                              codec::FrameType::kDelta, 0);
  const FrameBudget without = allocator.Allocate(MakeState(1500), false,
                                                 codec::FrameType::kDelta, 0);
  EXPECT_EQ(with.target, without.target);
}

TEST(FrameBudgetTest, ExcessBacklogPaidAggressivelyInDropMode) {
  FrameBudgetAllocator allocator;
  // Excess = 150'000 - 75'000 = 75'000 bits over 5 frames = 15'000/frame.
  const FrameBudget b = allocator.Allocate(MakeState(1500, 150'000), true,
                                           codec::FrameType::kDelta, 0);
  EXPECT_NEAR(static_cast<double>(b.target.bits()),
              0.85 * 1'500'000.0 / 30.0 - 15'000.0, 200.0);
}

TEST(FrameBudgetTest, ExcessBacklogPaidGentlyInSteadyState) {
  FrameBudgetAllocator allocator;
  // Same excess over the 30-frame steady horizon = 2'500/frame.
  const FrameBudget b = allocator.Allocate(MakeState(1500, 150'000), false,
                                           codec::FrameType::kDelta, 0);
  EXPECT_NEAR(static_cast<double>(b.target.bits()),
              1'500'000.0 / 30.0 - 2'500.0, 200.0);
}

TEST(FrameBudgetTest, BudgetNeverBelowMinFrame) {
  FrameBudgetAllocator allocator;
  const FrameBudget b = allocator.Allocate(MakeState(200, 5'000'000), true,
                                           codec::FrameType::kDelta,
                                           /*consecutive_skips=*/5);
  EXPECT_FALSE(b.skip);  // skips exhausted
  EXPECT_GE(b.target.bits(), 4000);
}

TEST(FrameBudgetTest, SkipUnderExtremeBacklog) {
  FrameBudgetAllocator allocator;
  // 500 ms of backlog at 1000 kbps.
  const FrameBudget b = allocator.Allocate(MakeState(1000, 500'000), true,
                                           codec::FrameType::kDelta, 0);
  EXPECT_TRUE(b.skip);
}

TEST(FrameBudgetTest, SkipsBoundedByConsecutiveLimit) {
  FrameBudgetAllocator allocator;
  const NetworkState state = MakeState(1000, 500'000);
  EXPECT_TRUE(
      allocator.Allocate(state, true, codec::FrameType::kDelta, 0).skip);
  EXPECT_TRUE(
      allocator.Allocate(state, true, codec::FrameType::kDelta, 1).skip);
  EXPECT_FALSE(
      allocator.Allocate(state, true, codec::FrameType::kDelta, 2).skip);
}

TEST(FrameBudgetTest, KeyframesNeverSkipped) {
  FrameBudgetAllocator allocator;
  const FrameBudget b = allocator.Allocate(MakeState(1000, 800'000), true,
                                           codec::FrameType::kKey, 0);
  EXPECT_FALSE(b.skip);
}

TEST(FrameBudgetTest, KeyframeBoostDependsOnDropState) {
  FrameBudgetAllocator allocator;
  const FrameBudget steady = allocator.Allocate(MakeState(1500), false,
                                                codec::FrameType::kKey, 0);
  const FrameBudget delta = allocator.Allocate(MakeState(1500), false,
                                               codec::FrameType::kDelta, 0);
  EXPECT_NEAR(steady.target / delta.target, 3.0, 0.01);
  const FrameBudget drop = allocator.Allocate(MakeState(1500), true,
                                              codec::FrameType::kKey, 0);
  const FrameBudget drop_delta = allocator.Allocate(
      MakeState(1500), true, codec::FrameType::kDelta, 0);
  EXPECT_NEAR(drop.target / drop_delta.target, 1.5, 0.01);
}

// Property sweep: for any capacity/backlog/drop combination, budgets are
// positive, caps are >= targets, and larger backlog never raises the budget.
class BudgetPropertyTest
    : public ::testing::TestWithParam<std::tuple<int64_t, bool>> {};

TEST_P(BudgetPropertyTest, MonotoneInBacklogAndWellFormed) {
  const auto [capacity_kbps, drop_active] = GetParam();
  FrameBudgetAllocator allocator;
  int64_t prev = std::numeric_limits<int64_t>::max();
  for (int64_t backlog = 0; backlog <= 1'000'000; backlog += 50'000) {
    const FrameBudget b =
        allocator.Allocate(MakeState(capacity_kbps, backlog), drop_active,
                           codec::FrameType::kDelta,
                           /*consecutive_skips=*/99);  // disable skip
    ASSERT_FALSE(b.skip);
    EXPECT_GT(b.target.bits(), 0);
    EXPECT_GE(b.cap, b.target);
    EXPECT_LE(b.target.bits(), prev);
    prev = b.target.bits();
  }
}

INSTANTIATE_TEST_SUITE_P(
    CapacityAndMode, BudgetPropertyTest,
    ::testing::Combine(::testing::Values<int64_t>(200, 500, 1000, 2500, 8000),
                       ::testing::Bool()));

}  // namespace
}  // namespace rave::core
