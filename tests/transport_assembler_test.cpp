#include "transport/frame_assembler.h"

#include <gtest/gtest.h>

#include <vector>

namespace rave::transport {
namespace {

struct AssemblerFixture {
  explicit AssemblerFixture(FrameAssembler::Config config = {}) {
    assembler = std::make_unique<FrameAssembler>(
        loop, config,
        [this](const CompleteFrame& f) { completed.push_back(f); },
        [this](int64_t id) { lost.push_back(id); });
  }
  EventLoop loop;
  std::vector<CompleteFrame> completed;
  std::vector<int64_t> lost;
  std::unique_ptr<FrameAssembler> assembler;
};

net::Packet MakePacket(int64_t frame_id, int index, int count,
                       bool keyframe = false) {
  net::Packet p;
  p.media_seq = frame_id * 100 + index;
  p.frame_id = frame_id;
  p.packet_index = index;
  p.packets_in_frame = count;
  p.capture_time = Timestamp::Millis(frame_id * 33);
  p.keyframe = keyframe;
  p.size = DataSize::Bits(9'600);
  return p;
}

TEST(FrameAssemblerTest, SinglePacketFrameCompletesImmediately) {
  AssemblerFixture fx;
  fx.assembler->OnPacketReceived(MakePacket(0, 0, 1, true),
                                 Timestamp::Millis(40));
  ASSERT_EQ(fx.completed.size(), 1u);
  EXPECT_EQ(fx.completed[0].frame_id, 0);
  EXPECT_EQ(fx.completed[0].complete_time, Timestamp::Millis(40));
  EXPECT_EQ(fx.completed[0].capture_time, Timestamp::Millis(0));
  EXPECT_TRUE(fx.completed[0].keyframe);
}

TEST(FrameAssemblerTest, MultiPacketFrameCompletesOnLastPacket) {
  AssemblerFixture fx;
  fx.assembler->OnPacketReceived(MakePacket(1, 0, 3), Timestamp::Millis(10));
  fx.assembler->OnPacketReceived(MakePacket(1, 1, 3), Timestamp::Millis(20));
  EXPECT_TRUE(fx.completed.empty());
  EXPECT_EQ(fx.assembler->frames_pending(), 1u);
  fx.assembler->OnPacketReceived(MakePacket(1, 2, 3), Timestamp::Millis(30));
  ASSERT_EQ(fx.completed.size(), 1u);
  EXPECT_EQ(fx.completed[0].complete_time, Timestamp::Millis(30));
  EXPECT_EQ(fx.completed[0].packets, 3);
  EXPECT_EQ(fx.completed[0].size.bits(), 3 * 9'600);
  EXPECT_EQ(fx.assembler->frames_pending(), 0u);
}

TEST(FrameAssemblerTest, DuplicatePacketsIgnored) {
  AssemblerFixture fx;
  fx.assembler->OnPacketReceived(MakePacket(0, 0, 2), Timestamp::Millis(10));
  fx.assembler->OnPacketReceived(MakePacket(0, 0, 2), Timestamp::Millis(12));
  EXPECT_TRUE(fx.completed.empty());
  fx.assembler->OnPacketReceived(MakePacket(0, 1, 2), Timestamp::Millis(15));
  ASSERT_EQ(fx.completed.size(), 1u);
  EXPECT_EQ(fx.completed[0].size.bits(), 2 * 9'600);
}

TEST(FrameAssemblerTest, DuplicateAfterCompletionDoesNotRefire) {
  // A network-duplicated copy of the completing packet arrives after the
  // frame already completed: no second completion, no resurrection.
  AssemblerFixture fx;
  fx.assembler->OnPacketReceived(MakePacket(0, 0, 2), Timestamp::Millis(10));
  fx.assembler->OnPacketReceived(MakePacket(0, 1, 2), Timestamp::Millis(15));
  ASSERT_EQ(fx.completed.size(), 1u);
  fx.assembler->OnPacketReceived(MakePacket(0, 1, 2), Timestamp::Millis(18));
  fx.assembler->OnPacketReceived(MakePacket(0, 0, 2), Timestamp::Millis(20));
  EXPECT_EQ(fx.completed.size(), 1u);
  EXPECT_EQ(fx.assembler->frames_completed(), 1);
  EXPECT_EQ(fx.assembler->frames_pending(), 0u);
  EXPECT_TRUE(fx.lost.empty());
}

TEST(FrameAssemblerTest, ReorderedPacketsStillCompleteFrame) {
  // Packets of one frame arriving out of order (reordering fault) complete
  // the frame at the last arrival regardless of index order.
  AssemblerFixture fx;
  fx.assembler->OnPacketReceived(MakePacket(0, 2, 3), Timestamp::Millis(10));
  fx.assembler->OnPacketReceived(MakePacket(0, 0, 3), Timestamp::Millis(12));
  fx.assembler->OnPacketReceived(MakePacket(0, 1, 3), Timestamp::Millis(14));
  ASSERT_EQ(fx.completed.size(), 1u);
  EXPECT_EQ(fx.completed[0].complete_time, Timestamp::Millis(14));
  EXPECT_EQ(fx.completed[0].packets, 3);
}

TEST(FrameAssemblerTest, OutOfOrderCompletionAllowed) {
  // Frame 2 completes while frame 1 still waits for an RTX; frame 1 then
  // completes late — no spurious loss.
  AssemblerFixture fx;
  fx.assembler->OnPacketReceived(MakePacket(1, 0, 2), Timestamp::Millis(10));
  fx.assembler->OnPacketReceived(MakePacket(2, 0, 1), Timestamp::Millis(20));
  fx.assembler->OnPacketReceived(MakePacket(1, 1, 2), Timestamp::Millis(90));
  EXPECT_EQ(fx.completed.size(), 2u);
  EXPECT_TRUE(fx.lost.empty());
  EXPECT_EQ(fx.completed[0].frame_id, 2);
  EXPECT_EQ(fx.completed[1].frame_id, 1);
}

TEST(FrameAssemblerTest, TimeoutDeclaresLoss) {
  FrameAssembler::Config config;
  config.loss_timeout = TimeDelta::Millis(200);
  config.sweep_interval = TimeDelta::Millis(50);
  AssemblerFixture fx(config);
  fx.assembler->OnPacketReceived(MakePacket(0, 0, 2), Timestamp::Zero());
  fx.loop.RunFor(TimeDelta::Millis(300));
  ASSERT_EQ(fx.lost.size(), 1u);
  EXPECT_EQ(fx.lost[0], 0);
  EXPECT_EQ(fx.assembler->frames_lost(), 1);
  EXPECT_EQ(fx.assembler->frames_pending(), 0u);
}

TEST(FrameAssemblerTest, LatePacketAfterLossIgnored) {
  FrameAssembler::Config config;
  config.loss_timeout = TimeDelta::Millis(100);
  config.sweep_interval = TimeDelta::Millis(20);
  AssemblerFixture fx(config);
  fx.assembler->OnPacketReceived(MakePacket(0, 0, 2), Timestamp::Zero());
  fx.loop.RunFor(TimeDelta::Millis(200));
  ASSERT_EQ(fx.lost.size(), 1u);
  // The missing packet finally shows up: frame must not resurrect.
  fx.assembler->OnPacketReceived(MakePacket(0, 1, 2),
                                 Timestamp::Millis(200));
  EXPECT_TRUE(fx.completed.empty());
  EXPECT_EQ(fx.assembler->frames_pending(), 0u);
}

TEST(FrameAssemblerTest, AbandonFrameFiresLossOnce) {
  AssemblerFixture fx;
  fx.assembler->OnPacketReceived(MakePacket(3, 0, 2), Timestamp::Zero());
  fx.assembler->AbandonFrame(3);
  fx.assembler->AbandonFrame(3);
  ASSERT_EQ(fx.lost.size(), 1u);
  EXPECT_EQ(fx.lost[0], 3);
}

TEST(FrameAssemblerTest, AbandonUnseenFrameStillReportsLoss) {
  // A frame whose packets were all dropped never reaches the assembler; the
  // NACK give-up path still declares it.
  AssemblerFixture fx;
  fx.assembler->AbandonFrame(9);
  ASSERT_EQ(fx.lost.size(), 1u);
  EXPECT_EQ(fx.lost[0], 9);
}

TEST(FrameAssemblerTest, AbandonCompletedFrameIsNoop) {
  AssemblerFixture fx;
  fx.assembler->OnPacketReceived(MakePacket(0, 0, 1), Timestamp::Zero());
  fx.assembler->AbandonFrame(0);
  EXPECT_TRUE(fx.lost.empty());
}

TEST(FrameAssemblerTest, CountersTrackTotals) {
  AssemblerFixture fx;
  for (int64_t id = 0; id < 5; ++id) {
    fx.assembler->OnPacketReceived(MakePacket(id, 0, 1),
                                   Timestamp::Millis(id));
  }
  fx.assembler->AbandonFrame(100);
  EXPECT_EQ(fx.assembler->frames_completed(), 5);
  EXPECT_EQ(fx.assembler->frames_lost(), 1);
}

}  // namespace
}  // namespace rave::transport
