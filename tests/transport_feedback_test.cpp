#include "transport/feedback.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace rave::transport {
namespace {

net::Packet MakePacket(int64_t seq, int64_t bits = 9'600) {
  net::Packet p;
  p.seq = seq;
  p.media_seq = seq;
  p.size = DataSize::Bits(bits);
  return p;
}

TEST(FeedbackGeneratorTest, FlushesAtInterval) {
  EventLoop loop;
  std::vector<FeedbackReport> reports;
  FeedbackGenerator gen(loop, TimeDelta::Millis(50),
                        [&](FeedbackReport&& r) { reports.push_back(std::move(r)); });
  gen.OnPacketReceived(MakePacket(0), Timestamp::Millis(5));
  gen.OnPacketReceived(MakePacket(1), Timestamp::Millis(10));
  loop.RunFor(TimeDelta::Millis(60));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].packets.size(), 2u);
  EXPECT_EQ(reports[0].highest_seq, 1);
  EXPECT_EQ(reports[0].created, Timestamp::Millis(50));
}

TEST(FeedbackGeneratorTest, EmptyIntervalsProduceNoReport) {
  EventLoop loop;
  int reports = 0;
  FeedbackGenerator gen(loop, TimeDelta::Millis(50),
                        [&](FeedbackReport&&) { ++reports; });
  loop.RunFor(TimeDelta::Seconds(1));
  EXPECT_EQ(reports, 0);
}

TEST(FeedbackGeneratorTest, HighestSeqSticksAcrossReports) {
  EventLoop loop;
  std::vector<FeedbackReport> reports;
  FeedbackGenerator gen(loop, TimeDelta::Millis(50),
                        [&](FeedbackReport&& r) { reports.push_back(std::move(r)); });
  gen.OnPacketReceived(MakePacket(7), Timestamp::Millis(1));
  loop.RunFor(TimeDelta::Millis(50));
  gen.OnPacketReceived(MakePacket(3), Timestamp::Millis(60));  // late arrival
  loop.RunFor(TimeDelta::Millis(50));
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[1].highest_seq, 7);
}

TEST(SentPacketHistoryTest, JoinsAckedPackets) {
  SentPacketHistory history;
  net::Packet p = MakePacket(0);
  p.send_time = Timestamp::Millis(10);
  history.OnPacketSent(p);

  FeedbackReport report;
  report.highest_seq = 0;
  report.packets.push_back({0, Timestamp::Millis(45), p.size});
  const auto results = history.OnFeedback(report, Timestamp::Millis(70));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].arrival.has_value());
  EXPECT_EQ(*results[0].arrival, Timestamp::Millis(45));
  EXPECT_EQ(results[0].send_time, Timestamp::Millis(10));
  EXPECT_EQ(history.in_flight(), DataSize::Zero());
}

TEST(SentPacketHistoryTest, InfersLossFromGaps) {
  SentPacketHistory history;
  for (int64_t seq = 0; seq < 5; ++seq) {
    net::Packet p = MakePacket(seq);
    p.send_time = Timestamp::Millis(seq);
    history.OnPacketSent(p);
  }
  // Receiver saw 0, 2, 4 -> 1 and 3 are lost.
  FeedbackReport report;
  report.highest_seq = 4;
  for (int64_t seq : {0, 2, 4}) {
    report.packets.push_back({seq, Timestamp::Millis(30 + seq), DataSize::Bits(9'600)});
  }
  const auto results = history.OnFeedback(report, Timestamp::Millis(50));
  ASSERT_EQ(results.size(), 5u);
  EXPECT_TRUE(results[0].arrival.has_value());
  EXPECT_FALSE(results[1].arrival.has_value());
  EXPECT_TRUE(results[2].arrival.has_value());
  EXPECT_FALSE(results[3].arrival.has_value());
  EXPECT_TRUE(results[4].arrival.has_value());
}

TEST(SentPacketHistoryTest, PacketsBeyondHighestSeqStayInFlight) {
  SentPacketHistory history;
  for (int64_t seq = 0; seq < 3; ++seq) {
    net::Packet p = MakePacket(seq);
    p.send_time = Timestamp::Millis(seq);
    history.OnPacketSent(p);
  }
  FeedbackReport report;
  report.highest_seq = 1;
  report.packets.push_back({0, Timestamp::Millis(20), DataSize::Bits(9'600)});
  report.packets.push_back({1, Timestamp::Millis(21), DataSize::Bits(9'600)});
  const auto results = history.OnFeedback(report, Timestamp::Millis(25));
  EXPECT_EQ(results.size(), 2u);
  EXPECT_EQ(history.in_flight_packets(), 1u);
  EXPECT_EQ(history.in_flight(), DataSize::Bits(9'600));
}

TEST(SentPacketHistoryTest, InFlightAccountsBytes) {
  SentPacketHistory history;
  for (int64_t seq = 0; seq < 4; ++seq) {
    net::Packet p = MakePacket(seq, 10'000);
    p.send_time = Timestamp::Zero();
    history.OnPacketSent(p);
  }
  EXPECT_EQ(history.in_flight().bits(), 40'000);
}

TEST(SentPacketHistoryTest, PrunesAncientUnackedPackets) {
  SentPacketHistory history(TimeDelta::Seconds(1));
  net::Packet old = MakePacket(0);
  old.send_time = Timestamp::Zero();
  history.OnPacketSent(old);
  net::Packet fresh = MakePacket(1);
  fresh.send_time = Timestamp::Seconds(5);
  history.OnPacketSent(fresh);
  // A feedback that covers nothing still triggers pruning.
  FeedbackReport report;
  report.highest_seq = -1;
  history.OnFeedback(report, Timestamp::Seconds(5));
  EXPECT_EQ(history.in_flight_packets(), 1u);
}

}  // namespace
}  // namespace rave::transport
