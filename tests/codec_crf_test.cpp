#include "codec/crf_rate_control.h"

#include <gtest/gtest.h>

#include <memory>

#include "codec/encoder.h"
#include "video/video_source.h"

namespace rave::codec {
namespace {

struct DriveStats {
  double mean_qp = 0.0;
  double mean_ssim = 0.0;
  double bitrate_kbps = 0.0;
  int64_t max_frame_bits = 0;
};

DriveStats Drive(const CrfConfig& config, video::ContentClass content,
                 int frames) {
  EncoderConfig enc_config;
  enc_config.fps = config.fps;
  enc_config.seed = 5;
  Encoder encoder(enc_config, std::make_unique<CrfRateControl>(config));
  video::VideoSource source({.content = content, .seed = 9});
  DriveStats stats;
  int64_t bits = 0;
  for (int i = 0; i < frames; ++i) {
    const Timestamp now = Timestamp::Millis(i * 33);
    const EncodedFrame f = encoder.EncodeFrame(source.CaptureFrame(now), now);
    stats.mean_qp += f.qp / frames;
    stats.mean_ssim += f.ssim / frames;
    bits += f.size.bits();
    stats.max_frame_bits = std::max(stats.max_frame_bits, f.size.bits());
  }
  stats.bitrate_kbps = static_cast<double>(bits) / (frames / 30.0) / 1e3;
  return stats;
}

TEST(CrfTest, LowerCrfMeansBetterQualityMoreBits) {
  CrfConfig low;
  low.crf = 20.0;
  CrfConfig high;
  high.crf = 32.0;
  const DriveStats q_low = Drive(low, video::ContentClass::kTalkingHead, 300);
  const DriveStats q_high =
      Drive(high, video::ContentClass::kTalkingHead, 300);
  EXPECT_GT(q_low.mean_ssim, q_high.mean_ssim);
  EXPECT_GT(q_low.bitrate_kbps, q_high.bitrate_kbps);
  EXPECT_LT(q_low.mean_qp, q_high.mean_qp);
}

TEST(CrfTest, QpStaysNearCrfForTypicalContent) {
  CrfConfig config;
  config.crf = 26.0;
  const DriveStats stats =
      Drive(config, video::ContentClass::kTalkingHead, 600);
  // CRF is anchored to the model's reference complexity; average QP should
  // track the configured factor within a few units.
  EXPECT_NEAR(stats.mean_qp, 26.0, 4.0);
}

TEST(CrfTest, BitrateFollowsContentNotATarget) {
  CrfConfig config;
  config.crf = 26.0;
  const DriveStats talking =
      Drive(config, video::ContentClass::kTalkingHead, 600);
  const DriveStats sports = Drive(config, video::ContentClass::kSports, 600);
  // Same quality target; busier content needs substantially more bits.
  EXPECT_GT(sports.bitrate_kbps, 1.5 * talking.bitrate_kbps);
}

TEST(CrfTest, PureCrfIgnoresTargetRate) {
  CrfConfig config;
  config.crf = 24.0;
  CrfRateControl rc(config);
  rc.SetTargetRate(DataRate::KilobitsPerSec(100));
  EXPECT_EQ(rc.current_target(), DataRate::PlusInfinity());
}

TEST(CrfTest, CappedCrfBoundsFrameSizes) {
  CrfConfig config;
  config.crf = 18.0;  // generous quality so the cap must bite
  config.cap_rate = DataRate::KilobitsPerSec(800);
  config.vbv_window = TimeDelta::Millis(500);
  const DriveStats stats = Drive(config, video::ContentClass::kSports, 600);
  // VBV capacity is 400 kb; no frame may exceed it (+ encoder tolerance).
  EXPECT_LE(stats.max_frame_bits, static_cast<int64_t>(400'000 * 1.10));
  // Long-run bitrate respects the cap with modest slack.
  EXPECT_LT(stats.bitrate_kbps, 1000.0);
}

TEST(CrfTest, CappedCrfAcceptsReconfig) {
  CrfConfig config;
  config.cap_rate = DataRate::KilobitsPerSec(1500);
  CrfRateControl rc(config);
  rc.SetTargetRate(DataRate::KilobitsPerSec(700));
  EXPECT_EQ(rc.current_target().kbps(), 700);
  rc.SetTargetRate(DataRate::Zero());  // ignored
  EXPECT_EQ(rc.current_target().kbps(), 700);
}

TEST(CrfTest, Name) {
  CrfRateControl rc(CrfConfig{});
  EXPECT_EQ(rc.name(), "x264-crf");
}

}  // namespace
}  // namespace rave::codec
