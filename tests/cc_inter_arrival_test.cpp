#include "cc/inter_arrival.h"

#include <gtest/gtest.h>

namespace rave::cc {
namespace {

TEST(InterArrivalTest, NoDeltaUntilThirdGroup) {
  InterArrival ia(TimeDelta::Millis(5));
  // Group 1.
  EXPECT_FALSE(ia.OnPacket(Timestamp::Millis(0), Timestamp::Millis(25)));
  // Group 2 (send 10 > 0 + 5ms): closes group 1, but no previous group yet.
  EXPECT_FALSE(ia.OnPacket(Timestamp::Millis(10), Timestamp::Millis(35)));
  // Group 3: now a delta between groups 1 and 2 emerges.
  const auto delta =
      ia.OnPacket(Timestamp::Millis(20), Timestamp::Millis(45));
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(delta->send_delta, TimeDelta::Millis(10));
  EXPECT_EQ(delta->arrival_delta, TimeDelta::Millis(10));
}

TEST(InterArrivalTest, PacketsWithinBurstWindowGroupTogether) {
  InterArrival ia(TimeDelta::Millis(5));
  ia.OnPacket(Timestamp::Millis(0), Timestamp::Millis(25));
  ia.OnPacket(Timestamp::Micros(2'000), Timestamp::Millis(27));  // same group
  ia.OnPacket(Timestamp::Micros(4'000), Timestamp::Millis(29));  // same group
  ia.OnPacket(Timestamp::Millis(20), Timestamp::Millis(45));     // group 2
  const auto delta = ia.OnPacket(Timestamp::Millis(40), Timestamp::Millis(65));
  ASSERT_TRUE(delta.has_value());
  // Group 1 last send = 4 ms, group 2 last send = 20 ms.
  EXPECT_EQ(delta->send_delta, TimeDelta::Millis(16));
  // Group 1 last arrival = 29 ms, group 2 last arrival = 45 ms.
  EXPECT_EQ(delta->arrival_delta, TimeDelta::Millis(16));
}

TEST(InterArrivalTest, QueueGrowthShowsPositiveDelayDelta) {
  InterArrival ia(TimeDelta::Millis(5));
  // Send every 10 ms; arrivals progressively delayed (queue building).
  std::optional<InterArrivalDelta> last;
  for (int i = 0; i < 10; ++i) {
    const auto send = Timestamp::Millis(i * 10);
    const auto arrival = Timestamp::Millis(25 + i * 12);  // +2 ms per group
    if (auto d = ia.OnPacket(send, arrival)) last = d;
  }
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->arrival_delta - last->send_delta, TimeDelta::Millis(2));
}

TEST(InterArrivalTest, ResetForgetsHistory) {
  InterArrival ia(TimeDelta::Millis(5));
  ia.OnPacket(Timestamp::Millis(0), Timestamp::Millis(25));
  ia.OnPacket(Timestamp::Millis(10), Timestamp::Millis(35));
  ia.Reset();
  // After reset we need three fresh groups again before a delta.
  EXPECT_FALSE(ia.OnPacket(Timestamp::Millis(20), Timestamp::Millis(45)));
  EXPECT_FALSE(ia.OnPacket(Timestamp::Millis(30), Timestamp::Millis(55)));
  EXPECT_TRUE(ia.OnPacket(Timestamp::Millis(40), Timestamp::Millis(65)));
}

TEST(InterArrivalTest, DeltaArrivalIsLaterGroupArrival) {
  InterArrival ia(TimeDelta::Millis(5));
  ia.OnPacket(Timestamp::Millis(0), Timestamp::Millis(20));
  ia.OnPacket(Timestamp::Millis(10), Timestamp::Millis(30));
  const auto delta = ia.OnPacket(Timestamp::Millis(20), Timestamp::Millis(40));
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(delta->arrival, Timestamp::Millis(30));
}

}  // namespace
}  // namespace rave::cc
