#include "transport/fec.h"

#include <gtest/gtest.h>

#include "rtc/session.h"

namespace rave::transport {
namespace {

net::Packet MediaPacket(int64_t media_seq, int64_t frame_id = 0,
                        int index = 0, int count = 1) {
  net::Packet p;
  p.media_seq = media_seq;
  p.frame_id = frame_id;
  p.packet_index = index;
  p.packets_in_frame = count;
  p.size = DataSize::Bits(9'600);
  p.capture_time = Timestamp::Millis(frame_id * 33);
  return p;
}

TEST(FecEncoderTest, EmitsRecoveryWhenGroupCloses) {
  FecEncoder encoder({.group_size = 4, .recovery_packets = 2});
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(encoder.OnMediaPacket(MediaPacket(i)).empty());
  }
  const auto recovery = encoder.OnMediaPacket(MediaPacket(3));
  ASSERT_EQ(recovery.size(), 2u);
  for (const auto& fec : recovery) {
    EXPECT_TRUE(fec.is_fec);
    EXPECT_LT(fec.media_seq, 0);
    EXPECT_EQ(fec.size.bits(), 9'600);  // sized like the largest in group
  }
  EXPECT_NE(recovery[0].media_seq, recovery[1].media_seq);
}

TEST(FecEncoderTest, ZeroRecoveryDisablesFec) {
  FecEncoder encoder({.group_size = 3, .recovery_packets = 0});
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(encoder.OnMediaPacket(MediaPacket(i)).empty());
  }
}

TEST(FecEncoderTest, GroupDescriptorsRetrievable) {
  FecEncoder encoder({.group_size = 2, .recovery_packets = 1});
  encoder.OnMediaPacket(MediaPacket(10, 5, 0, 2));
  const auto recovery = encoder.OnMediaPacket(MediaPacket(11, 5, 1, 2));
  ASSERT_EQ(recovery.size(), 1u);
  const auto* group = encoder.GroupFor(recovery[0].media_seq);
  ASSERT_NE(group, nullptr);
  ASSERT_EQ(group->size(), 2u);
  EXPECT_EQ((*group)[0].media_seq, 10);
  EXPECT_EQ((*group)[1].frame_id, 5);
  EXPECT_EQ(encoder.GroupFor(-999999), nullptr);
}

TEST(FecEncoderTest, RecoveryPacketsSizedByLargest) {
  FecEncoder encoder({.group_size = 2, .recovery_packets = 1});
  net::Packet big = MediaPacket(0);
  big.size = DataSize::Bits(12'000);
  encoder.OnMediaPacket(big);
  const auto recovery = encoder.OnMediaPacket(MediaPacket(1));
  ASSERT_EQ(recovery.size(), 1u);
  EXPECT_EQ(recovery[0].size.bits(), 12'000);
}

struct FecPair {
  FecPair(int group_size, int recovery)
      : encoder({.group_size = group_size, .recovery_packets = recovery}),
        decoder([this](const net::Packet& p, Timestamp t) {
          recovered.push_back({p, t});
        }) {}

  // Delivers a full group, losing the media seqs in `lost`.
  void Deliver(const std::vector<net::Packet>& media,
               const std::vector<net::Packet>& recovery,
               const std::vector<int64_t>& lost) {
    auto is_lost = [&](int64_t seq) {
      return std::find(lost.begin(), lost.end(), seq) != lost.end();
    };
    Timestamp t = Timestamp::Millis(10);
    for (const auto& p : media) {
      if (!is_lost(p.media_seq)) decoder.OnMediaPacket(p, t);
      t += TimeDelta::Millis(1);
    }
    for (const auto& fec : recovery) {
      if (const auto* group = encoder.GroupFor(fec.media_seq)) {
        decoder.OnRecoveryPacket(fec.media_seq, *group,
                                 encoder.recovery_packets(), t);
      }
      t += TimeDelta::Millis(1);
    }
  }

  FecEncoder encoder;
  std::vector<std::pair<net::Packet, Timestamp>> recovered;
  FecDecoder decoder;
};

TEST(FecDecoderTest, RecoversSingleLossWithOneRecoveryPacket) {
  FecPair fec(4, 1);
  std::vector<net::Packet> media;
  std::vector<net::Packet> recovery;
  for (int i = 0; i < 4; ++i) {
    media.push_back(MediaPacket(i, /*frame_id=*/7, i, 4));
    auto r = fec.encoder.OnMediaPacket(media.back());
    recovery.insert(recovery.end(), r.begin(), r.end());
  }
  fec.Deliver(media, recovery, /*lost=*/{2});
  ASSERT_EQ(fec.recovered.size(), 1u);
  EXPECT_EQ(fec.recovered[0].first.media_seq, 2);
  EXPECT_EQ(fec.recovered[0].first.frame_id, 7);
  EXPECT_EQ(fec.recovered[0].first.packet_index, 2);
  EXPECT_EQ(fec.recovered[0].first.packets_in_frame, 4);
}

TEST(FecDecoderTest, CannotRecoverMoreLossesThanRedundancy) {
  FecPair fec(4, 1);
  std::vector<net::Packet> media;
  std::vector<net::Packet> recovery;
  for (int i = 0; i < 4; ++i) {
    media.push_back(MediaPacket(i));
    auto r = fec.encoder.OnMediaPacket(media.back());
    recovery.insert(recovery.end(), r.begin(), r.end());
  }
  fec.Deliver(media, recovery, /*lost=*/{1, 2});
  EXPECT_TRUE(fec.recovered.empty());
}

TEST(FecDecoderTest, TwoRecoveryPacketsCoverTwoLosses) {
  FecPair fec(5, 2);
  std::vector<net::Packet> media;
  std::vector<net::Packet> recovery;
  for (int i = 0; i < 5; ++i) {
    media.push_back(MediaPacket(i));
    auto r = fec.encoder.OnMediaPacket(media.back());
    recovery.insert(recovery.end(), r.begin(), r.end());
  }
  ASSERT_EQ(recovery.size(), 2u);
  fec.Deliver(media, recovery, /*lost=*/{0, 4});
  EXPECT_EQ(fec.recovered.size(), 2u);
}

TEST(FecDecoderTest, LostRecoveryPacketStillRecoversIfEnoughArrive) {
  FecPair fec(4, 2);
  std::vector<net::Packet> media;
  std::vector<net::Packet> recovery;
  for (int i = 0; i < 4; ++i) {
    media.push_back(MediaPacket(i));
    auto r = fec.encoder.OnMediaPacket(media.back());
    recovery.insert(recovery.end(), r.begin(), r.end());
  }
  // One media and one recovery packet lost: 3 media + 1 recovery = 4 >= N.
  recovery.pop_back();
  fec.Deliver(media, recovery, /*lost=*/{3});
  EXPECT_EQ(fec.recovered.size(), 1u);
}

TEST(FecDecoderTest, NoDuplicateRecovery) {
  FecPair fec(3, 2);
  std::vector<net::Packet> media;
  std::vector<net::Packet> recovery;
  for (int i = 0; i < 3; ++i) {
    media.push_back(MediaPacket(i));
    auto r = fec.encoder.OnMediaPacket(media.back());
    recovery.insert(recovery.end(), r.begin(), r.end());
  }
  fec.Deliver(media, recovery, /*lost=*/{1});
  EXPECT_EQ(fec.recovered.size(), 1u);
  EXPECT_EQ(fec.decoder.packets_recovered(), 1);
}

TEST(ProtectionControllerTest, OffBelowActivationThreshold) {
  ProtectionController controller;
  EXPECT_EQ(controller.RecoveryPacketsFor(0.0), 0);
  EXPECT_EQ(controller.RecoveryPacketsFor(0.004), 0);
}

TEST(ProtectionControllerTest, ScalesWithLoss) {
  ProtectionController controller;
  const int low = controller.RecoveryPacketsFor(0.01);
  const int mid = controller.RecoveryPacketsFor(0.05);
  const int high = controller.RecoveryPacketsFor(0.2);
  EXPECT_GE(low, 1);
  EXPECT_GE(mid, low);
  EXPECT_GE(high, mid);
  EXPECT_LE(high, 4);  // max_recovery
}

TEST(ProtectionControllerTest, OverheadFraction) {
  ProtectionController controller;
  EXPECT_DOUBLE_EQ(controller.OverheadFor(0), 0.0);
  EXPECT_NEAR(controller.OverheadFor(2), 2.0 / 12.0, 1e-12);
}

TEST(FecIntegrationTest, FecReducesLossOutagesOnBurstyLink) {
  rtc::SessionConfig config;
  config.scheme = rtc::Scheme::kAdaptive;
  config.duration = TimeDelta::Seconds(30);
  config.link.trace =
      net::CapacityTrace::Constant(DataRate::KilobitsPerSec(2000));
  config.link.loss.random_loss = 0.03;

  config.enable_fec = false;
  const auto without = rtc::RunSession(config);
  config.enable_fec = true;
  const auto with = rtc::RunSession(config);

  // FEC repairs in ~0 RTT what RTX repairs in >= 1 RTT, so tail latency of
  // delivered frames improves; frames lost entirely must not increase.
  EXPECT_LE(with.summary.frames_lost_network,
            without.summary.frames_lost_network);
  EXPECT_LT(with.summary.latency_p95_ms,
            without.summary.latency_p95_ms * 1.05);
}

}  // namespace
}  // namespace rave::transport
