#include "cc/gcc.h"

#include <gtest/gtest.h>

#include "cc/oracle.h"

namespace rave::cc {
namespace {

TEST(AckedBitrateTest, ZeroUntilEnoughData) {
  AckedBitrateEstimator est;
  EXPECT_EQ(est.rate(), DataRate::Zero());
  est.OnAckedPacket(Timestamp::Millis(0), DataSize::Bits(9'600));
  EXPECT_EQ(est.rate(), DataRate::Zero());
  est.OnAckedPacket(Timestamp::Millis(50), DataSize::Bits(9'600));
  EXPECT_EQ(est.rate(), DataRate::Zero());  // span < 100 ms
  est.OnAckedPacket(Timestamp::Millis(150), DataSize::Bits(9'600));
  EXPECT_GT(est.rate(), DataRate::Zero());
}

TEST(AckedBitrateTest, MeasuresSteadyRate) {
  AckedBitrateEstimator est(TimeDelta::Millis(500));
  // 9600 bits every 10 ms = 960 kbps.
  for (int i = 0; i <= 100; ++i) {
    est.OnAckedPacket(Timestamp::Millis(10 * i), DataSize::Bits(9'600));
  }
  EXPECT_NEAR(est.rate().kbps(), 960.0, 40.0);
}

TEST(AckedBitrateTest, WindowForgetsOldRate) {
  AckedBitrateEstimator est(TimeDelta::Millis(500));
  for (int i = 0; i <= 50; ++i) {
    est.OnAckedPacket(Timestamp::Millis(10 * i), DataSize::Bits(19'200));
  }
  // Rate halves afterwards; after a full window only the new rate remains.
  for (int i = 0; i <= 100; ++i) {
    est.OnAckedPacket(Timestamp::Millis(500 + 10 * i), DataSize::Bits(9'600));
  }
  EXPECT_NEAR(est.rate().kbps(), 960.0, 50.0);
}

std::vector<transport::PacketResult> MakeResults(int count, int64_t lost_every,
                                                 Timestamp base) {
  std::vector<transport::PacketResult> results;
  for (int i = 0; i < count; ++i) {
    transport::PacketResult r;
    r.seq = i;
    r.size = DataSize::Bits(9'600);
    r.send_time = base + TimeDelta::Millis(10 * i);
    if (lost_every <= 0 || (i % lost_every) != 0) {
      r.arrival = r.send_time + TimeDelta::Millis(30);
    }
    results.push_back(r);
  }
  return results;
}

TEST(LossBasedControlTest, HighLossCutsRate) {
  LossBasedControl control;
  const DataRate before = control.target();
  // 20% loss sustained over several windows.
  for (int w = 0; w < 5; ++w) {
    control.OnPacketResults(MakeResults(100, 5, Timestamp::Seconds(w)),
                            Timestamp::Seconds(w + 1));
  }
  EXPECT_LT(control.target(), before * 0.8);
  EXPECT_NEAR(control.loss_rate(), 0.2, 0.01);
}

TEST(LossBasedControlTest, NoLossGrowsSlowly) {
  LossBasedControl control;
  const DataRate before = control.target();
  for (int w = 0; w < 5; ++w) {
    control.OnPacketResults(MakeResults(100, 0, Timestamp::Seconds(w)),
                            Timestamp::Seconds(w + 1));
  }
  EXPECT_GT(control.target(), before);
  EXPECT_LT(control.target(), before * 1.4);
}

TEST(LossBasedControlTest, ModerateLossHoldsRate) {
  LossBasedControl control;
  const DataRate before = control.target();
  // 5% loss: between the low and high thresholds.
  for (int w = 0; w < 5; ++w) {
    control.OnPacketResults(MakeResults(100, 20, Timestamp::Seconds(w)),
                            Timestamp::Seconds(w + 1));
  }
  EXPECT_EQ(control.target(), before);
}

// Closed-loop harness: runs the full GccEstimator against a virtual
// bottleneck with the given capacity and a droptail-like queue delay model.
DataRate RunClosedLoop(GccEstimator& gcc, DataRate capacity, int rounds,
                       Timestamp start = Timestamp::Zero()) {
  double queue_s = 0.0;
  int64_t seq = 0;
  Timestamp now = start;
  for (int round = 0; round < rounds; ++round) {
    // One 50 ms feedback round: packets paced at the current target.
    const DataRate target = gcc.target();
    const int packets = std::max<int>(
        1, static_cast<int>(target.bps() * 0.05 / 9'600.0));
    std::vector<transport::PacketResult> results;
    for (int i = 0; i < packets; ++i) {
      transport::PacketResult r;
      r.seq = seq++;
      r.size = DataSize::Bits(9'600);
      r.send_time = now + TimeDelta::Millis(50 * i / packets);
      // Queue integrates (arrival rate - capacity).
      queue_s += 9'600.0 / static_cast<double>(capacity.bps());
      queue_s = std::max(0.0, queue_s - 0.05 / packets);
      r.arrival = r.send_time + TimeDelta::Millis(30) +
                  TimeDelta::SecondsF(queue_s);
      results.push_back(r);
    }
    now += TimeDelta::Millis(50);
    gcc.OnPacketResults(results, now);
  }
  return gcc.target();
}

TEST(GccEstimatorTest, ConvergesBelowCapacityWithQueueFeedback) {
  GccEstimator::Config config;
  config.initial_rate = DataRate::KilobitsPerSec(2000);
  GccEstimator gcc(config);
  const DataRate final_rate =
      RunClosedLoop(gcc, DataRate::KilobitsPerSec(1000), 600);
  EXPECT_LT(final_rate.kbps(), 1300.0);
  EXPECT_GT(final_rate.kbps(), 500.0);
}

TEST(GccEstimatorTest, RttTracksSendToFeedbackDelay) {
  GccEstimator gcc;
  std::vector<transport::PacketResult> results;
  transport::PacketResult r;
  r.seq = 0;
  r.size = DataSize::Bits(9'600);
  r.send_time = Timestamp::Millis(100);
  r.arrival = Timestamp::Millis(140);
  results.push_back(r);
  gcc.OnPacketResults(results, Timestamp::Millis(180));
  EXPECT_EQ(gcc.rtt(), TimeDelta::Millis(80));
}

TEST(GccEstimatorTest, InitialRatePropagates) {
  GccEstimator::Config config;
  config.initial_rate = DataRate::KilobitsPerSec(777);
  GccEstimator gcc(config);
  EXPECT_EQ(gcc.target().kbps(), 777);
}

TEST(GccEstimatorTest, EmptyResultsAreIgnored) {
  GccEstimator gcc;
  const DataRate before = gcc.target();
  gcc.OnPacketResults({}, Timestamp::Seconds(1));
  EXPECT_EQ(gcc.target(), before);
}

TEST(OracleBweTest, FollowsTraceWithUtilization) {
  EventLoop loop;
  OracleBwe oracle(loop,
                   net::CapacityTrace::StepDrop(DataRate::KilobitsPerSec(2000),
                                                DataRate::KilobitsPerSec(1000),
                                                Timestamp::Seconds(5)),
                   0.95);
  EXPECT_NEAR(oracle.target().kbps(), 1900.0, 1.0);
  loop.RunFor(TimeDelta::Seconds(6));
  EXPECT_NEAR(oracle.target().kbps(), 950.0, 1.0);
}

TEST(OracleBweTest, TracksLossAndAckedRate) {
  EventLoop loop;
  OracleBwe oracle(loop, net::CapacityTrace::Constant(
                             DataRate::KilobitsPerSec(1000)));
  auto results = MakeResults(100, 4, Timestamp::Zero());
  oracle.OnPacketResults(results, Timestamp::Seconds(2));
  EXPECT_NEAR(oracle.loss_rate(), 0.25, 0.01);
  EXPECT_GT(oracle.acked_rate(), DataRate::Zero());
}

}  // namespace
}  // namespace rave::cc
