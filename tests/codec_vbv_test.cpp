#include "codec/vbv.h"

#include <gtest/gtest.h>

namespace rave::codec {
namespace {

TEST(VbvTest, CapacityFromRateAndWindow) {
  VbvBuffer vbv(DataRate::KilobitsPerSec(1000), TimeDelta::Millis(1000));
  EXPECT_EQ(vbv.capacity().bits(), 1'000'000);
  EXPECT_TRUE(vbv.fill().IsZero());
  EXPECT_DOUBLE_EQ(vbv.fullness(), 0.0);
}

TEST(VbvTest, AddAndDrain) {
  VbvBuffer vbv(DataRate::KilobitsPerSec(1000), TimeDelta::Millis(1000));
  vbv.AddFrame(DataSize::Bits(400'000));
  EXPECT_EQ(vbv.fill().bits(), 400'000);
  vbv.Drain(TimeDelta::Millis(100));  // drains 100k bits
  EXPECT_EQ(vbv.fill().bits(), 300'000);
  EXPECT_DOUBLE_EQ(vbv.fullness(), 0.3);
}

TEST(VbvTest, DrainNeverGoesNegative) {
  VbvBuffer vbv(DataRate::KilobitsPerSec(1000), TimeDelta::Millis(500));
  vbv.AddFrame(DataSize::Bits(50'000));
  vbv.Drain(TimeDelta::Seconds(10));
  EXPECT_TRUE(vbv.fill().IsZero());
  vbv.Drain(TimeDelta::Millis(-5));  // no-op
  EXPECT_TRUE(vbv.fill().IsZero());
}

TEST(VbvTest, AddClampsAtCapacity) {
  VbvBuffer vbv(DataRate::KilobitsPerSec(1000), TimeDelta::Millis(500));
  vbv.AddFrame(DataSize::Bits(2'000'000));
  EXPECT_EQ(vbv.fill(), vbv.capacity());
  EXPECT_TRUE(vbv.SpaceRemaining().IsZero());
}

TEST(VbvTest, MaxFrameSizeWithHeadroom) {
  VbvBuffer vbv(DataRate::KilobitsPerSec(1000), TimeDelta::Millis(1000));
  vbv.AddFrame(DataSize::Bits(300'000));
  // Space = 700k; 10% headroom reserves 100k.
  EXPECT_EQ(vbv.MaxFrameSize(0.1).bits(), 600'000);
  EXPECT_EQ(vbv.MaxFrameSize(0.0).bits(), 700'000);
}

TEST(VbvTest, MaxFrameSizeNeverNegative) {
  VbvBuffer vbv(DataRate::KilobitsPerSec(1000), TimeDelta::Millis(200));
  vbv.AddFrame(DataSize::Bits(200'000));  // full
  EXPECT_EQ(vbv.MaxFrameSize(0.5).bits(), 0);
}

TEST(VbvTest, SetMaxRateRescalesCapacityPreservingFill) {
  VbvBuffer vbv(DataRate::KilobitsPerSec(2000), TimeDelta::Millis(1000));
  vbv.AddFrame(DataSize::Bits(500'000));
  vbv.SetMaxRate(DataRate::KilobitsPerSec(1000));
  EXPECT_EQ(vbv.capacity().bits(), 1'000'000);
  EXPECT_EQ(vbv.fill().bits(), 500'000);
  // Shrinking below the fill clamps the fill.
  vbv.SetMaxRate(DataRate::KilobitsPerSec(400));
  EXPECT_EQ(vbv.fill(), vbv.capacity());
}

TEST(VbvTest, SteadyStateStableUnderMatchedLoad) {
  // Adding exactly rate*dt per step keeps the buffer level constant.
  VbvBuffer vbv(DataRate::KilobitsPerSec(1200), TimeDelta::Millis(1000));
  vbv.AddFrame(DataSize::Bits(600'000));
  const DataSize per_frame = DataSize::Bits(40'000);  // 1200kbps at 30fps
  for (int i = 0; i < 300; ++i) {
    vbv.Drain(TimeDelta::SecondsF(1.0 / 30.0));
    vbv.AddFrame(per_frame);
  }
  EXPECT_NEAR(static_cast<double>(vbv.fill().bits()), 600'000.0, 2000.0);
}

}  // namespace
}  // namespace rave::codec
