// Chaos matrix over the whole system: every scheme x every hard-fault
// scenario (link outage, feedback blackhole, RTT spike, duplication +
// reordering bursts). Invariants: the session never crashes or deadlocks,
// frame accounting stays conserved, the encoder is never left stuck after
// the fault clears, the sender recovers to >= 90% of its pre-fault encoder
// target within a bounded time, and fault-injected runs are deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "fault/fault_plan.h"
#include "fault/wireless_profiles.h"
#include "net/capacity_trace.h"
#include "rtc/session.h"

namespace rave::rtc {
namespace {

struct FaultScenario {
  std::string name;
  fault::FaultPlan plan;
  /// Scenarios that silence feedback long enough must trip the breaker.
  bool starves_feedback = false;
  /// Long enough to cross the encoder-pause deadline (3 s).
  bool reaches_pause = false;
  /// Worst acceptable time from fault-clear to 90% recovery, across all
  /// schemes. Estimator rebuild dominates (GCC-style additive increase with
  /// no probing); bounds carry ~40% margin over the worst measured scheme.
  TimeDelta recovery_bound = TimeDelta::Seconds(12);
};

std::vector<FaultScenario> Scenarios() {
  std::vector<FaultScenario> scenarios;
  {
    FaultScenario s{.name = "outage", .starves_feedback = true};
    s.plan.Outage(Timestamp::Seconds(10), TimeDelta::Seconds(2));
    scenarios.push_back(std::move(s));
  }
  {
    FaultScenario s{.name = "outage_long",
                    .starves_feedback = true,
                    .reaches_pause = true};
    s.plan.Outage(Timestamp::Seconds(10), TimeDelta::Seconds(4));
    scenarios.push_back(std::move(s));
  }
  {
    // 3 s of lost feedback collapses every estimator to the starved send
    // rate; the slow rebuild is additive once inside the capacity band.
    FaultScenario s{.name = "blackhole",
                    .starves_feedback = true,
                    .recovery_bound = TimeDelta::Seconds(34)};
    s.plan.FeedbackBlackhole(Timestamp::Seconds(10), TimeDelta::Seconds(3));
    scenarios.push_back(std::move(s));
  }
  {
    // A sustained +150 ms RTT spike reads as 2 s of over-use: the
    // delay-sensitive schemes multiplicatively back off the whole window.
    FaultScenario s{.name = "spike",
                    .recovery_bound = TimeDelta::Seconds(46)};
    s.plan.DelaySpike(Timestamp::Seconds(10), TimeDelta::Seconds(2),
                      TimeDelta::Millis(150));
    scenarios.push_back(std::move(s));
  }
  {
    FaultScenario s{.name = "dup_reorder"};
    s.plan.DuplicationBurst(Timestamp::Seconds(10), TimeDelta::Seconds(5), 0.2)
        .ReorderBurst(Timestamp::Seconds(10), TimeDelta::Seconds(5), 0.2,
                      TimeDelta::Millis(40));
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

class FaultChaosTest
    : public ::testing::TestWithParam<std::tuple<Scheme, int>> {
 protected:
  static FaultScenario Scenario() {
    return Scenarios()[static_cast<size_t>(std::get<1>(GetParam()))];
  }

  static constexpr double kLinkKbps = 2500.0;

  static SessionResult Run(uint64_t seed = 42,
                           TimeDelta duration = TimeDelta::Seconds(30)) {
    SessionConfig config;
    config.scheme = std::get<0>(GetParam());
    config.duration = duration;
    config.seed = seed;
    config.initial_rate = DataRate::KilobitsPerSec(2100);
    config.link.trace =
        net::CapacityTrace::Constant(DataRate::KilobitsPerSec(2500));
    config.faults = Scenario().plan;
    return RunSession(config);
  }

  static Timestamp FaultClear() { return Scenario().plan.LastClearTime(); }
};

TEST_P(FaultChaosTest, SurvivesWithFrameAccountingIntact) {
  const SessionResult result = Run();
  const auto& s = result.summary;
  const int64_t accounted = s.frames_delivered + s.frames_skipped +
                            s.frames_dropped_sender + s.frames_lost_network;
  EXPECT_LE(accounted, s.frames_captured);
  // In-flight/timeout tail as in the fault-free property test.
  EXPECT_GE(accounted, s.frames_captured - 90);
  EXPECT_GT(s.frames_captured, 0);
  for (const auto& f : result.frames) {
    if (f.fate == metrics::FrameFate::kDelivered) {
      ASSERT_TRUE(f.complete_time.has_value());
      EXPECT_GE(*f.complete_time, f.capture_time);
    }
  }
}

TEST_P(FaultChaosTest, EncoderIsNotStuckAfterFaultClears) {
  const SessionResult result = Run();
  // Well after the fault cleared, the pipeline must be moving again: frames
  // are being encoded (not paused/skipped) AND delivered end-to-end.
  const Timestamp tail = Timestamp::Seconds(27);
  int64_t encoded_tail = 0;
  int64_t delivered_tail = 0;
  for (const auto& f : result.frames) {
    if (f.capture_time < tail) continue;
    if (f.fate != metrics::FrameFate::kSkippedEncoder &&
        f.fate != metrics::FrameFate::kDroppedSender) {
      ++encoded_tail;
    }
    if (f.fate == metrics::FrameFate::kDelivered) ++delivered_tail;
  }
  EXPECT_GT(encoded_tail, 30) << "encoder stuck after " << Scenario().name;
  EXPECT_GT(delivered_tail, 30) << "delivery stuck after " << Scenario().name;
}

TEST_P(FaultChaosTest, RecoversToPreFaultTargetWithinBoundedTime) {
  // Long horizon: post-starvation estimator rebuild is additive and can
  // legitimately take tens of seconds (no bandwidth probing in GCC-style
  // estimation) — but it must complete, and within the scenario's bound.
  const SessionResult result = Run(42, TimeDelta::Seconds(60));

  // Pre-fault reference: mean encoder target over the 2 s before the fault,
  // clamped to the link capacity — an estimator that was overshooting the
  // link pre-fault (salsify does) owes us capacity back, not the overshoot.
  double pre_sum = 0.0;
  int pre_n = 0;
  for (const auto& p : result.timeseries) {
    if (p.at >= Timestamp::Seconds(8) && p.at < Timestamp::Seconds(10)) {
      pre_sum += p.encoder_target_kbps;
      ++pre_n;
    }
  }
  ASSERT_GT(pre_n, 0);
  const double pre_target = std::min(pre_sum / pre_n, kLinkKbps);
  ASSERT_GT(pre_target, 0.0);

  // Recovery: first timeseries point after the fault clears where the
  // encoder target is back to >= 90% of the pre-fault level.
  const Timestamp clear = FaultClear();
  Timestamp recovered_at = Timestamp::PlusInfinity();
  for (const auto& p : result.timeseries) {
    if (p.at < clear) continue;
    if (p.encoder_target_kbps >= 0.9 * pre_target) {
      recovered_at = p.at;
      break;
    }
  }
  ASSERT_TRUE(recovered_at.IsFinite())
      << Scenario().name << ": target never returned to 90% of "
      << pre_target << " kbps";
  EXPECT_LE(recovered_at - clear, Scenario().recovery_bound)
      << Scenario().name << ": recovery took too long";
}

TEST_P(FaultChaosTest, FaultInjectedRunsAreDeterministic) {
  const SessionResult a = Run(7);
  const SessionResult b = Run(7);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.summary.latency_mean_ms, b.summary.latency_mean_ms);
  EXPECT_EQ(a.summary.encoded_ssim_mean, b.summary.encoded_ssim_mean);
  EXPECT_EQ(a.link_stats.packets_delivered, b.link_stats.packets_delivered);
  EXPECT_EQ(a.link_stats.packets_duplicated, b.link_stats.packets_duplicated);
  EXPECT_EQ(a.link_stats.packets_reordered, b.link_stats.packets_reordered);
  EXPECT_EQ(a.breaker_stats.opens, b.breaker_stats.opens);
  EXPECT_EQ(a.breaker_stats.recoveries, b.breaker_stats.recoveries);
}

TEST_P(FaultChaosTest, BreakerEngagesExactlyWhenFeedbackStarves) {
  const SessionResult result = Run();
  const FaultScenario scenario = Scenario();
  if (scenario.starves_feedback) {
    EXPECT_GE(result.breaker_stats.opens, 1) << scenario.name;
    EXPECT_GE(result.breaker_stats.recoveries, 1)
        << scenario.name << ": breaker never closed again";
    EXPECT_GT(result.breaker_stats.time_open, TimeDelta::Zero());
  } else {
    // Benign-for-feedback faults must not trip the breaker.
    EXPECT_EQ(result.breaker_stats.opens, 0) << scenario.name;
  }
  if (scenario.reaches_pause) {
    EXPECT_GE(result.breaker_stats.pauses, 1) << scenario.name;
    EXPECT_GT(result.summary.frames_dropped_sender, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAndFaults, FaultChaosTest,
    ::testing::Combine(::testing::ValuesIn(kAllSchemes),
                       ::testing::Range(0, 5)),
    [](const ::testing::TestParamInfo<std::tuple<Scheme, int>>& info) {
      std::string name =
          ToString(std::get<0>(info.param)) + "_" +
          Scenarios()[static_cast<size_t>(std::get<1>(info.param))].name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- wireless chaos matrix: named wireless profiles, alone and combined
// with the classic hard faults (fade x handover x blackhole / outage).
// Invariants: no crash, conserved frame accounting, the breaker fires iff
// the scenario genuinely starves feedback (a clean handover gap must NOT
// trip it), and reruns are deterministic.

struct WirelessScenario {
  std::string name;
  std::string profile;
  /// Extra classic faults layered on top of the profile's own events.
  bool add_blackhole = false;  ///< feedback blackhole @10s+3s
  bool add_outage = false;     ///< link outage @15s+2s
  /// Breaker expectation: exactly one of these is meaningful.
  bool breaker_clean = false;     ///< opens must be 0
  bool starves_feedback = false;  ///< opens must be >= 1
};

std::vector<WirelessScenario> WirelessScenarios() {
  return {
      {.name = "wifi_fade", .profile = "wifi-fade", .breaker_clean = true},
      // Handover gaps (150-250 ms) sit below the breaker's ~400 ms
      // starvation threshold: a clean cell move must not open it.
      {.name = "lte_handover",
       .profile = "lte-handover",
       .breaker_clean = true},
      {.name = "fpv_radio", .profile = "fpv-radio", .breaker_clean = true},
      {.name = "lte_handover_blackhole",
       .profile = "lte-handover",
       .add_blackhole = true,
       .starves_feedback = true},
      {.name = "wifi_fade_outage",
       .profile = "wifi-fade",
       .add_outage = true,
       .starves_feedback = true},
      // Fading + three handovers + bursty loss: the breaker may engage at
      // the margin, but it must stay bounded (asserted below) and the
      // session must keep moving.
      {.name = "train_commute", .profile = "train-commute"},
  };
}

class WirelessChaosTest
    : public ::testing::TestWithParam<std::tuple<Scheme, int>> {
 protected:
  static WirelessScenario Scenario() {
    return WirelessScenarios()[static_cast<size_t>(std::get<1>(GetParam()))];
  }

  static SessionResult Run(uint64_t seed = 42) {
    const TimeDelta duration = TimeDelta::Seconds(30);
    const WirelessScenario scenario = Scenario();
    const fault::WirelessProfile profile =
        fault::MakeWirelessProfile(scenario.profile, duration);

    SessionConfig config;
    config.scheme = std::get<0>(GetParam());
    config.duration = duration;
    config.seed = seed;
    config.initial_rate = DataRate::KilobitsPerSec(2100);
    config.link.trace = profile.trace;
    config.link.loss = profile.loss;
    config.wireless_profile = profile.name;
    fault::FaultPlan plan(profile.faults.events());
    if (scenario.add_blackhole) {
      plan.FeedbackBlackhole(Timestamp::Seconds(10), TimeDelta::Seconds(3));
    }
    if (scenario.add_outage) {
      plan.Outage(Timestamp::Seconds(15), TimeDelta::Seconds(2));
    }
    config.faults = std::move(plan);
    return RunSession(config);
  }
};

TEST_P(WirelessChaosTest, SurvivesWithFrameAccountingIntact) {
  const SessionResult result = Run();
  const auto& s = result.summary;
  const int64_t accounted = s.frames_delivered + s.frames_skipped +
                            s.frames_dropped_sender + s.frames_lost_network;
  EXPECT_LE(accounted, s.frames_captured);
  EXPECT_GE(accounted, s.frames_captured - 90);
  EXPECT_GT(s.frames_captured, 0);
  EXPECT_GT(s.frames_delivered, 0);
  for (const auto& f : result.frames) {
    if (f.fate == metrics::FrameFate::kDelivered) {
      ASSERT_TRUE(f.complete_time.has_value());
      EXPECT_GE(*f.complete_time, f.capture_time);
    }
  }
}

TEST_P(WirelessChaosTest, SessionKeepsMovingThroughTheTail) {
  const SessionResult result = Run();
  // The last profile event (final handover at 85% of 30 s, or the last
  // renegotiation) is behind us by t=27s: the pipeline must still deliver.
  int64_t delivered_tail = 0;
  for (const auto& f : result.frames) {
    if (f.capture_time >= Timestamp::Seconds(27) &&
        f.fate == metrics::FrameFate::kDelivered) {
      ++delivered_tail;
    }
  }
  EXPECT_GT(delivered_tail, 30) << Scenario().name;
}

TEST_P(WirelessChaosTest, BreakerFiresIffStarved) {
  const SessionResult result = Run();
  const WirelessScenario scenario = Scenario();
  if (scenario.breaker_clean) {
    EXPECT_EQ(result.breaker_stats.opens, 0) << scenario.name;
  }
  if (scenario.starves_feedback) {
    EXPECT_GE(result.breaker_stats.opens, 1) << scenario.name;
    EXPECT_GE(result.breaker_stats.recoveries, 1)
        << scenario.name << ": breaker never closed again";
  }
  // Never flapping: a 30 s session has no business opening the breaker
  // more than a handful of times under any registered profile.
  EXPECT_LE(result.breaker_stats.opens, 4) << scenario.name;
}

TEST_P(WirelessChaosTest, WirelessRunsAreDeterministic) {
  const SessionResult a = Run(7);
  const SessionResult b = Run(7);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.summary.latency_mean_ms, b.summary.latency_mean_ms);
  EXPECT_EQ(a.summary.encoded_ssim_mean, b.summary.encoded_ssim_mean);
  EXPECT_EQ(a.link_stats.packets_delivered, b.link_stats.packets_delivered);
  EXPECT_EQ(a.link_stats.packets_lost_random, b.link_stats.packets_lost_random);
  EXPECT_EQ(a.link_stats.handovers, b.link_stats.handovers);
  EXPECT_EQ(a.link_stats.renegotiations, b.link_stats.renegotiations);
  EXPECT_EQ(a.breaker_stats.opens, b.breaker_stats.opens);
}

TEST_P(WirelessChaosTest, HandoverCountersMatchThePlan) {
  const SessionResult result = Run();
  const WirelessScenario scenario = Scenario();
  const fault::WirelessProfile profile =
      fault::MakeWirelessProfile(scenario.profile, TimeDelta::Seconds(30));
  int64_t handovers = 0;
  int64_t renegs = 0;
  for (const fault::FaultEvent& e : profile.faults.events()) {
    // The session's event loop runs events at exactly t = duration too.
    if (e.start > Timestamp::Seconds(30)) continue;
    if (e.kind == fault::FaultKind::kHandover) ++handovers;
    if (e.kind == fault::FaultKind::kRenegotiate) ++renegs;
  }
  EXPECT_EQ(result.link_stats.handovers, handovers) << scenario.name;
  EXPECT_EQ(result.link_stats.renegotiations, renegs) << scenario.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAndProfiles, WirelessChaosTest,
    ::testing::Combine(::testing::ValuesIn(kAllSchemes),
                       ::testing::Range(0, 6)),
    [](const ::testing::TestParamInfo<std::tuple<Scheme, int>>& info) {
      std::string name =
          ToString(std::get<0>(info.param)) + "_" +
          WirelessScenarios()[static_cast<size_t>(std::get<1>(info.param))]
              .name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace rave::rtc
