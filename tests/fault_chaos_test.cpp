// Chaos matrix over the whole system: every scheme x every hard-fault
// scenario (link outage, feedback blackhole, RTT spike, duplication +
// reordering bursts). Invariants: the session never crashes or deadlocks,
// frame accounting stays conserved, the encoder is never left stuck after
// the fault clears, the sender recovers to >= 90% of its pre-fault encoder
// target within a bounded time, and fault-injected runs are deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "fault/fault_plan.h"
#include "net/capacity_trace.h"
#include "rtc/session.h"

namespace rave::rtc {
namespace {

struct FaultScenario {
  std::string name;
  fault::FaultPlan plan;
  /// Scenarios that silence feedback long enough must trip the breaker.
  bool starves_feedback = false;
  /// Long enough to cross the encoder-pause deadline (3 s).
  bool reaches_pause = false;
  /// Worst acceptable time from fault-clear to 90% recovery, across all
  /// schemes. Estimator rebuild dominates (GCC-style additive increase with
  /// no probing); bounds carry ~40% margin over the worst measured scheme.
  TimeDelta recovery_bound = TimeDelta::Seconds(12);
};

std::vector<FaultScenario> Scenarios() {
  std::vector<FaultScenario> scenarios;
  {
    FaultScenario s{.name = "outage", .starves_feedback = true};
    s.plan.Outage(Timestamp::Seconds(10), TimeDelta::Seconds(2));
    scenarios.push_back(std::move(s));
  }
  {
    FaultScenario s{.name = "outage_long",
                    .starves_feedback = true,
                    .reaches_pause = true};
    s.plan.Outage(Timestamp::Seconds(10), TimeDelta::Seconds(4));
    scenarios.push_back(std::move(s));
  }
  {
    // 3 s of lost feedback collapses every estimator to the starved send
    // rate; the slow rebuild is additive once inside the capacity band.
    FaultScenario s{.name = "blackhole",
                    .starves_feedback = true,
                    .recovery_bound = TimeDelta::Seconds(34)};
    s.plan.FeedbackBlackhole(Timestamp::Seconds(10), TimeDelta::Seconds(3));
    scenarios.push_back(std::move(s));
  }
  {
    // A sustained +150 ms RTT spike reads as 2 s of over-use: the
    // delay-sensitive schemes multiplicatively back off the whole window.
    FaultScenario s{.name = "spike",
                    .recovery_bound = TimeDelta::Seconds(46)};
    s.plan.DelaySpike(Timestamp::Seconds(10), TimeDelta::Seconds(2),
                      TimeDelta::Millis(150));
    scenarios.push_back(std::move(s));
  }
  {
    FaultScenario s{.name = "dup_reorder"};
    s.plan.DuplicationBurst(Timestamp::Seconds(10), TimeDelta::Seconds(5), 0.2)
        .ReorderBurst(Timestamp::Seconds(10), TimeDelta::Seconds(5), 0.2,
                      TimeDelta::Millis(40));
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

class FaultChaosTest
    : public ::testing::TestWithParam<std::tuple<Scheme, int>> {
 protected:
  static FaultScenario Scenario() {
    return Scenarios()[static_cast<size_t>(std::get<1>(GetParam()))];
  }

  static constexpr double kLinkKbps = 2500.0;

  static SessionResult Run(uint64_t seed = 42,
                           TimeDelta duration = TimeDelta::Seconds(30)) {
    SessionConfig config;
    config.scheme = std::get<0>(GetParam());
    config.duration = duration;
    config.seed = seed;
    config.initial_rate = DataRate::KilobitsPerSec(2100);
    config.link.trace =
        net::CapacityTrace::Constant(DataRate::KilobitsPerSec(2500));
    config.faults = Scenario().plan;
    return RunSession(config);
  }

  static Timestamp FaultClear() { return Scenario().plan.LastClearTime(); }
};

TEST_P(FaultChaosTest, SurvivesWithFrameAccountingIntact) {
  const SessionResult result = Run();
  const auto& s = result.summary;
  const int64_t accounted = s.frames_delivered + s.frames_skipped +
                            s.frames_dropped_sender + s.frames_lost_network;
  EXPECT_LE(accounted, s.frames_captured);
  // In-flight/timeout tail as in the fault-free property test.
  EXPECT_GE(accounted, s.frames_captured - 90);
  EXPECT_GT(s.frames_captured, 0);
  for (const auto& f : result.frames) {
    if (f.fate == metrics::FrameFate::kDelivered) {
      ASSERT_TRUE(f.complete_time.has_value());
      EXPECT_GE(*f.complete_time, f.capture_time);
    }
  }
}

TEST_P(FaultChaosTest, EncoderIsNotStuckAfterFaultClears) {
  const SessionResult result = Run();
  // Well after the fault cleared, the pipeline must be moving again: frames
  // are being encoded (not paused/skipped) AND delivered end-to-end.
  const Timestamp tail = Timestamp::Seconds(27);
  int64_t encoded_tail = 0;
  int64_t delivered_tail = 0;
  for (const auto& f : result.frames) {
    if (f.capture_time < tail) continue;
    if (f.fate != metrics::FrameFate::kSkippedEncoder &&
        f.fate != metrics::FrameFate::kDroppedSender) {
      ++encoded_tail;
    }
    if (f.fate == metrics::FrameFate::kDelivered) ++delivered_tail;
  }
  EXPECT_GT(encoded_tail, 30) << "encoder stuck after " << Scenario().name;
  EXPECT_GT(delivered_tail, 30) << "delivery stuck after " << Scenario().name;
}

TEST_P(FaultChaosTest, RecoversToPreFaultTargetWithinBoundedTime) {
  // Long horizon: post-starvation estimator rebuild is additive and can
  // legitimately take tens of seconds (no bandwidth probing in GCC-style
  // estimation) — but it must complete, and within the scenario's bound.
  const SessionResult result = Run(42, TimeDelta::Seconds(60));

  // Pre-fault reference: mean encoder target over the 2 s before the fault,
  // clamped to the link capacity — an estimator that was overshooting the
  // link pre-fault (salsify does) owes us capacity back, not the overshoot.
  double pre_sum = 0.0;
  int pre_n = 0;
  for (const auto& p : result.timeseries) {
    if (p.at >= Timestamp::Seconds(8) && p.at < Timestamp::Seconds(10)) {
      pre_sum += p.encoder_target_kbps;
      ++pre_n;
    }
  }
  ASSERT_GT(pre_n, 0);
  const double pre_target = std::min(pre_sum / pre_n, kLinkKbps);
  ASSERT_GT(pre_target, 0.0);

  // Recovery: first timeseries point after the fault clears where the
  // encoder target is back to >= 90% of the pre-fault level.
  const Timestamp clear = FaultClear();
  Timestamp recovered_at = Timestamp::PlusInfinity();
  for (const auto& p : result.timeseries) {
    if (p.at < clear) continue;
    if (p.encoder_target_kbps >= 0.9 * pre_target) {
      recovered_at = p.at;
      break;
    }
  }
  ASSERT_TRUE(recovered_at.IsFinite())
      << Scenario().name << ": target never returned to 90% of "
      << pre_target << " kbps";
  EXPECT_LE(recovered_at - clear, Scenario().recovery_bound)
      << Scenario().name << ": recovery took too long";
}

TEST_P(FaultChaosTest, FaultInjectedRunsAreDeterministic) {
  const SessionResult a = Run(7);
  const SessionResult b = Run(7);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.summary.latency_mean_ms, b.summary.latency_mean_ms);
  EXPECT_EQ(a.summary.encoded_ssim_mean, b.summary.encoded_ssim_mean);
  EXPECT_EQ(a.link_stats.packets_delivered, b.link_stats.packets_delivered);
  EXPECT_EQ(a.link_stats.packets_duplicated, b.link_stats.packets_duplicated);
  EXPECT_EQ(a.link_stats.packets_reordered, b.link_stats.packets_reordered);
  EXPECT_EQ(a.breaker_stats.opens, b.breaker_stats.opens);
  EXPECT_EQ(a.breaker_stats.recoveries, b.breaker_stats.recoveries);
}

TEST_P(FaultChaosTest, BreakerEngagesExactlyWhenFeedbackStarves) {
  const SessionResult result = Run();
  const FaultScenario scenario = Scenario();
  if (scenario.starves_feedback) {
    EXPECT_GE(result.breaker_stats.opens, 1) << scenario.name;
    EXPECT_GE(result.breaker_stats.recoveries, 1)
        << scenario.name << ": breaker never closed again";
    EXPECT_GT(result.breaker_stats.time_open, TimeDelta::Zero());
  } else {
    // Benign-for-feedback faults must not trip the breaker.
    EXPECT_EQ(result.breaker_stats.opens, 0) << scenario.name;
  }
  if (scenario.reaches_pause) {
    EXPECT_GE(result.breaker_stats.pauses, 1) << scenario.name;
    EXPECT_GT(result.summary.frames_dropped_sender, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesAndFaults, FaultChaosTest,
    ::testing::Combine(::testing::ValuesIn(kAllSchemes),
                       ::testing::Range(0, 5)),
    [](const ::testing::TestParamInfo<std::tuple<Scheme, int>>& info) {
      std::string name =
          ToString(std::get<0>(info.param)) + "_" +
          Scenarios()[static_cast<size_t>(std::get<1>(info.param))].name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace rave::rtc
