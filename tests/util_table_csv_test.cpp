#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/table.h"

namespace rave {
namespace {

TEST(TableTest, AlignsColumns) {
  Table t({"name", "value"});
  t.AddRow().Cell("a").Cell(int64_t{1});
  t.AddRow().Cell("longer-name").Cell(2.5, 1);
  const std::string out = t.ToString();
  std::istringstream iss(out);
  std::string header, rule, row1, row2;
  std::getline(iss, header);
  std::getline(iss, rule);
  std::getline(iss, row1);
  std::getline(iss, row2);
  EXPECT_NE(header.find("name"), std::string::npos);
  EXPECT_NE(header.find("value"), std::string::npos);
  EXPECT_EQ(rule.find_first_not_of('-'), std::string::npos);
  EXPECT_NE(row2.find("longer-name"), std::string::npos);
  EXPECT_NE(row2.find("2.5"), std::string::npos);
  // All data rows start their second column at the same offset.
  EXPECT_EQ(row1.size(), row2.size());
}

TEST(TableTest, NumericFormatting) {
  Table t({"x"});
  t.AddRow().Cell(3.14159, 2);
  EXPECT_NE(t.ToString().find("3.14"), std::string::npos);
  Table t2({"x"});
  t2.AddRow().Cell(int64_t{-42});
  EXPECT_NE(t2.ToString().find("-42"), std::string::npos);
}

TEST(TableTest, EmptyTableJustHeader) {
  Table t({"a", "b"});
  const std::string out = t.ToString();
  // Header + rule only.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/rave_csv_test.csv";
  {
    CsvWriter csv(path, {"t", "x"});
    csv.WriteRow(std::vector<std::string>{"0.1", "hello"});
    csv.WriteRow(std::vector<double>{1.5, 2.25});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t,x");
  std::getline(in, line);
  EXPECT_EQ(line, "0.1,hello");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2.25");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace rave
