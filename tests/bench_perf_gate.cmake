# Opt-in performance gate over tab4_microbench's lockstep batch sweep.
#
# Runs the throughput/batch section (smoke mode: google-benchmark skipped,
# full 64-session x 30 s matrix kept) and fails if:
#   - the batched-vs-serial identity flags are not true (a determinism
#     regression the numeric floor could otherwise mask), or
#   - session_batch_speedup falls below FLOOR, or
#   - serial_sessions_per_s falls below SERIAL_FLOOR (absolute sessions/sec,
#     a catastrophic tripwire only — the host swings ~1.5x run to run), or
#   - train_amortization falls below AMORT_FLOOR. This one is noise-free:
#     it is logical events / dispatched events, a pure count ratio fixed by
#     the deterministic simulation (1.0298 for the committed matrix), and it
#     reads exactly 1.0 the moment the event-coalescing fast path stops
#     granting time steps — no wall clock involved.
#
# The floor is a catastrophic-regression tripwire, not a precision bound:
# single-run wall-clock ratios on shared/virtualized CI hosts swing from
# ~0.69 to ~1.20 for identical binaries (see DESIGN.md "Frame-boundary
# rendezvous" for the measured numbers). The gate therefore takes the BEST
# speedup over up to ATTEMPTS runs — host noise only depresses a measured
# ratio at random, so the max across runs tracks the true ratio — and the
# identity flags must hold on EVERY run. Raise the floor only from repeated
# cold-run minima on a quiet host.
#
# Usage: cmake -DBINARY=<tab4_microbench> -DOUT=<dir> -DFLOOR=<x>
#              [-DSERIAL_FLOOR=<sessions/s>] -P this
if(NOT DEFINED BINARY OR NOT DEFINED OUT)
  message(FATAL_ERROR "BINARY and OUT must be defined")
endif()
if(NOT DEFINED FLOOR)
  set(FLOOR 0.70)
endif()
if(NOT DEFINED SERIAL_FLOOR)
  set(SERIAL_FLOOR 0)
endif()
if(NOT DEFINED AMORT_FLOOR)
  set(AMORT_FLOOR 0)
endif()
if(NOT DEFINED ATTEMPTS)
  set(ATTEMPTS 3)
endif()

file(MAKE_DIRECTORY ${OUT})
set(best_speedup 0)
set(best_serial 0)
set(control_speedup 0)
foreach(attempt RANGE 1 ${ATTEMPTS})
  execute_process(
    COMMAND ${BINARY} --smoke --runner-sessions=64 --runner-duration=30
            --jobs=2 --json=${OUT}/perf.json --hotpath-json=-
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "tab4_microbench failed (rc=${rc}):\n${stdout}\n${stderr}")
  endif()

  file(READ ${OUT}/perf.json json)
  string(JSON session_speedup GET ${json} session_batch_speedup)
  string(JSON session_identical GET ${json} session_batch_identical)
  string(JSON control_speedup GET ${json} control_batch_speedup)
  string(JSON control_identical GET ${json} control_batch_identical)
  string(JSON serial_sps GET ${json} serial_sessions_per_s)
  string(JSON amortization GET ${json} train_amortization)

  # The amortization ratio is deterministic, so like the identity flags a
  # single miss is a real regression, not noise.
  if(amortization LESS AMORT_FLOOR)
    message(FATAL_ERROR
            "train_amortization=${amortization} fell below ${AMORT_FLOOR}: "
            "the event-coalescing fast path stopped granting time steps "
            "(it reads exactly 1.0 when coalescing is lost)")
  endif()

  # Bit-identity is noise-free: any single failure is a real regression.
  if(NOT session_identical STREQUAL "ON")
    message(FATAL_ERROR
            "batched session results are NOT bit-identical to serial "
            "(session_batch_identical=${session_identical})")
  endif()
  if(NOT control_identical STREQUAL "ON")
    message(FATAL_ERROR
            "batched control-loop trajectories are NOT bit-identical to "
            "scalar (control_batch_identical=${control_identical})")
  endif()
  if(best_speedup LESS session_speedup)
    set(best_speedup ${session_speedup})
  endif()
  if(best_serial LESS serial_sps)
    set(best_serial ${serial_sps})
  endif()
  if(NOT best_speedup LESS FLOOR AND NOT best_serial LESS SERIAL_FLOOR)
    break()  # above both floors — no need to burn more attempts
  endif()
  message(STATUS
          "attempt ${attempt}/${ATTEMPTS}: session_batch_speedup="
          "${session_speedup} (floor ${FLOOR}), serial_sessions_per_s="
          "${serial_sps} (floor ${SERIAL_FLOOR}), retrying")
endforeach()

if(best_speedup LESS FLOOR)
  message(FATAL_ERROR
          "best session_batch_speedup over ${ATTEMPTS} runs = ${best_speedup}"
          " fell below the committed floor ${FLOOR} (control_batch_speedup="
          "${control_speedup}); the rendezvous or the batched kernels "
          "regressed catastrophically")
endif()
if(best_serial LESS SERIAL_FLOOR)
  message(FATAL_ERROR
          "best serial_sessions_per_s over ${ATTEMPTS} runs = ${best_serial} "
          "fell below the committed floor ${SERIAL_FLOOR}; the serial "
          "session fast path (event coalescing / timing wheel) regressed "
          "catastrophically")
endif()
message(STATUS
        "perf gate passed: session_batch_speedup=${best_speedup} "
        "(floor ${FLOOR}), serial_sessions_per_s=${best_serial} "
        "(floor ${SERIAL_FLOOR}, best of <=${ATTEMPTS}), "
        "control_batch_speedup=${control_speedup}, identity flags true on "
        "every run")
