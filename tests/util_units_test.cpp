#include "util/units.h"

#include <gtest/gtest.h>

namespace rave {
namespace {

TEST(DataSizeTest, Factories) {
  EXPECT_EQ(DataSize::Bits(100).bits(), 100);
  EXPECT_EQ(DataSize::Bytes(10).bits(), 80);
  EXPECT_EQ(DataSize::KiloBytes(2).bytes(), 2000);
  EXPECT_TRUE(DataSize::Zero().IsZero());
  EXPECT_FALSE(DataSize::PlusInfinity().IsFinite());
}

TEST(DataSizeTest, Arithmetic) {
  const DataSize a = DataSize::Bits(1000);
  const DataSize b = DataSize::Bits(400);
  EXPECT_EQ((a + b).bits(), 1400);
  EXPECT_EQ((a - b).bits(), 600);
  EXPECT_EQ((a * 1.5).bits(), 1500);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  DataSize c = a;
  c += b;
  EXPECT_EQ(c.bits(), 1400);
  c -= a;
  EXPECT_EQ(c.bits(), 400);
}

TEST(DataRateTest, Factories) {
  EXPECT_EQ(DataRate::BitsPerSec(5000).bps(), 5000);
  EXPECT_EQ(DataRate::KilobitsPerSec(3).bps(), 3000);
  EXPECT_EQ(DataRate::KilobitsPerSecF(2.5).bps(), 2500);
  EXPECT_EQ(DataRate::MegabitsPerSecF(1.5).bps(), 1'500'000);
  EXPECT_DOUBLE_EQ(DataRate::KilobitsPerSec(1500).mbps(), 1.5);
}

TEST(DataRateTest, Arithmetic) {
  const DataRate r = DataRate::KilobitsPerSec(1000);
  EXPECT_EQ((r * 1.25).kbps(), 1250);
  EXPECT_EQ((0.5 * r).kbps(), 500);
  EXPECT_EQ((r + DataRate::KilobitsPerSec(500)).kbps(), 1500);
  EXPECT_EQ((r - DataRate::KilobitsPerSec(300)).kbps(), 700);
  EXPECT_DOUBLE_EQ(r / DataRate::KilobitsPerSec(250), 4.0);
}

TEST(DimensionalTest, SizeOverTimeIsRate) {
  const DataSize size = DataSize::Bits(1'000'000);
  const TimeDelta t = TimeDelta::Seconds(2);
  EXPECT_EQ((size / t).bps(), 500'000);
}

TEST(DimensionalTest, RateTimesTimeIsSize) {
  const DataRate rate = DataRate::KilobitsPerSec(800);
  const TimeDelta t = TimeDelta::Millis(250);
  EXPECT_EQ((rate * t).bits(), 200'000);
  EXPECT_EQ((t * rate).bits(), 200'000);
}

TEST(DimensionalTest, SizeOverRateIsTime) {
  const DataSize size = DataSize::Bits(500'000);
  const DataRate rate = DataRate::KilobitsPerSec(1000);
  EXPECT_EQ((size / rate).ms(), 500);
}

TEST(DimensionalTest, RoundTripConsistency) {
  // (rate * t) / rate == t for representative values.
  for (int64_t kbps : {100, 850, 2500, 10000}) {
    for (int64_t ms : {1, 33, 250, 4000}) {
      const DataRate rate = DataRate::KilobitsPerSec(kbps);
      const TimeDelta t = TimeDelta::Millis(ms);
      const TimeDelta back = (rate * t) / rate;
      EXPECT_NEAR(back.us(), t.us(), 2)
          << "kbps=" << kbps << " ms=" << ms;
    }
  }
}

TEST(ToStringTest, Formats) {
  EXPECT_EQ(DataSize::Bits(500).ToString(), "500b");
  EXPECT_EQ(DataSize::Bits(12'300).ToString(), "12.3kb");
  EXPECT_EQ(DataSize::Bits(1'500'000).ToString(), "1.50Mb");
  EXPECT_EQ(DataRate::KilobitsPerSec(850).ToString(), "850kbps");
  EXPECT_EQ(DataRate::MegabitsPerSecF(2.5).ToString(), "2.50Mbps");
}

}  // namespace
}  // namespace rave
