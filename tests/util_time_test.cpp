#include "util/time.h"

#include <gtest/gtest.h>

namespace rave {
namespace {

TEST(TimeDeltaTest, Factories) {
  EXPECT_EQ(TimeDelta::Micros(1500).us(), 1500);
  EXPECT_EQ(TimeDelta::Millis(3).us(), 3000);
  EXPECT_EQ(TimeDelta::Seconds(2).us(), 2'000'000);
  EXPECT_EQ(TimeDelta::SecondsF(0.5).us(), 500'000);
  EXPECT_EQ(TimeDelta::SecondsF(-0.5).us(), -500'000);
  EXPECT_TRUE(TimeDelta::Zero().IsZero());
}

TEST(TimeDeltaTest, Conversions) {
  const TimeDelta d = TimeDelta::Millis(1234);
  EXPECT_EQ(d.ms(), 1234);
  EXPECT_DOUBLE_EQ(d.seconds(), 1.234);
  EXPECT_DOUBLE_EQ(d.ms_float(), 1234.0);
}

TEST(TimeDeltaTest, Arithmetic) {
  const TimeDelta a = TimeDelta::Millis(100);
  const TimeDelta b = TimeDelta::Millis(40);
  EXPECT_EQ((a + b).ms(), 140);
  EXPECT_EQ((a - b).ms(), 60);
  EXPECT_EQ((-a).ms(), -100);
  EXPECT_EQ((a * 2.5).ms(), 250);
  EXPECT_EQ((a * int64_t{3}).ms(), 300);
  EXPECT_EQ((a / 4).ms(), 25);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_EQ((2.0 * b).ms(), 80);
}

TEST(TimeDeltaTest, CompoundAssignment) {
  TimeDelta d = TimeDelta::Millis(10);
  d += TimeDelta::Millis(5);
  EXPECT_EQ(d.ms(), 15);
  d -= TimeDelta::Millis(20);
  EXPECT_EQ(d.ms(), -5);
}

TEST(TimeDeltaTest, Comparisons) {
  EXPECT_LT(TimeDelta::Millis(1), TimeDelta::Millis(2));
  EXPECT_EQ(TimeDelta::Millis(1000), TimeDelta::Seconds(1));
  EXPECT_GT(TimeDelta::PlusInfinity(), TimeDelta::Seconds(1'000'000));
  EXPECT_LT(TimeDelta::MinusInfinity(), TimeDelta::Seconds(-1'000'000));
}

TEST(TimeDeltaTest, InfinityPredicates) {
  EXPECT_FALSE(TimeDelta::PlusInfinity().IsFinite());
  EXPECT_TRUE(TimeDelta::PlusInfinity().IsPlusInfinity());
  EXPECT_FALSE(TimeDelta::MinusInfinity().IsFinite());
  EXPECT_TRUE(TimeDelta::Millis(5).IsFinite());
}

TEST(TimeDeltaTest, ToString) {
  EXPECT_EQ(TimeDelta::Micros(500).ToString(), "500us");
  EXPECT_EQ(TimeDelta::Millis(13).ToString(), "13.00ms");
  EXPECT_EQ(TimeDelta::SecondsF(2.5).ToString(), "2.500s");
  EXPECT_EQ(TimeDelta::PlusInfinity().ToString(), "+inf");
}

TEST(TimestampTest, FactoriesAndConversions) {
  const Timestamp t = Timestamp::Millis(1500);
  EXPECT_EQ(t.us(), 1'500'000);
  EXPECT_EQ(t.ms(), 1500);
  EXPECT_DOUBLE_EQ(t.seconds(), 1.5);
}

TEST(TimestampTest, ArithmeticWithDeltas) {
  const Timestamp t = Timestamp::Seconds(10);
  EXPECT_EQ((t + TimeDelta::Millis(500)).ms(), 10'500);
  EXPECT_EQ((t - TimeDelta::Millis(500)).ms(), 9'500);
  EXPECT_EQ((t - Timestamp::Seconds(4)).seconds(), 6.0);
  Timestamp u = t;
  u += TimeDelta::Seconds(1);
  EXPECT_EQ(u.seconds(), 11.0);
}

TEST(TimestampTest, Sentinels) {
  EXPECT_TRUE(Timestamp::MinusInfinity().IsMinusInfinity());
  EXPECT_FALSE(Timestamp::MinusInfinity().IsFinite());
  EXPECT_LT(Timestamp::MinusInfinity(), Timestamp::Zero());
  EXPECT_GT(Timestamp::PlusInfinity(), Timestamp::Seconds(1'000'000));
}

TEST(TimestampTest, ToString) {
  EXPECT_EQ(Timestamp::Millis(12345).ToString(), "12.345s");
  EXPECT_EQ(Timestamp::PlusInfinity().ToString(), "+inf");
  EXPECT_EQ(Timestamp::MinusInfinity().ToString(), "-inf");
}

}  // namespace
}  // namespace rave
