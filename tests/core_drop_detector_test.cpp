#include "core/drop_detector.h"

#include <gtest/gtest.h>

namespace rave::core {
namespace {

NetworkState MakeState(Timestamp at, int64_t capacity_kbps,
                       TimeDelta queue_delay = TimeDelta::Zero()) {
  NetworkState s;
  s.at = at;
  s.capacity = DataRate::KilobitsPerSec(capacity_kbps);
  s.queue_delay = queue_delay;
  return s;
}

TEST(DropDetectorTest, InactiveAtSteadyRate) {
  DropDetector detector;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(detector.OnState(MakeState(Timestamp::Millis(50 * i), 1500),
                                  false));
  }
  EXPECT_EQ(detector.severity(), 0.0);
}

TEST(DropDetectorTest, TriggersOnSharpFall) {
  DropDetector detector;
  for (int i = 0; i < 20; ++i) {
    detector.OnState(MakeState(Timestamp::Millis(50 * i), 2000), false);
  }
  EXPECT_TRUE(
      detector.OnState(MakeState(Timestamp::Millis(1000), 1000), false));
  EXPECT_NEAR(detector.severity(), 0.5, 0.01);
}

TEST(DropDetectorTest, SawtoothBelowRatioDoesNotTrigger) {
  // GCC's steady-state sawtooth decreases ~15%; drop_ratio is 20%.
  DropDetector detector;
  for (int i = 0; i < 200; ++i) {
    const int64_t kbps = (i % 20 < 17) ? 1000 : 870;
    EXPECT_FALSE(detector.OnState(
        MakeState(Timestamp::Millis(50 * i), kbps), false))
        << i;
  }
}

TEST(DropDetectorTest, OveruseDecreaseNeedsQueueGate) {
  DropDetector detector;
  detector.OnState(MakeState(Timestamp::Zero(), 1000), false);
  // Over-use decrease with an empty queue: routine sawtooth, no drop mode.
  EXPECT_FALSE(detector.OnState(
      MakeState(Timestamp::Millis(50), 1000, TimeDelta::Millis(10)), true));
  // Same signal with a swollen queue: genuine drop.
  EXPECT_TRUE(detector.OnState(
      MakeState(Timestamp::Millis(100), 1000, TimeDelta::Millis(120)), true));
}

TEST(DropDetectorTest, QueueDelayAloneTriggers) {
  DropDetector detector;
  detector.OnState(MakeState(Timestamp::Zero(), 1000), false);
  EXPECT_TRUE(detector.OnState(
      MakeState(Timestamp::Millis(50), 1000, TimeDelta::Millis(200)), false));
}

TEST(DropDetectorTest, HoldsThenClearsAfterQueueDrains) {
  DropDetector::Config config;
  config.hold = TimeDelta::Millis(400);
  DropDetector detector(config);
  for (int i = 0; i < 20; ++i) {
    detector.OnState(MakeState(Timestamp::Millis(50 * i), 2000), false);
  }
  detector.OnState(MakeState(Timestamp::Millis(1000), 800,
                             TimeDelta::Millis(300)),
                   false);
  EXPECT_TRUE(detector.active());

  // Queue drained but hold time not elapsed: still active.
  EXPECT_TRUE(detector.OnState(
      MakeState(Timestamp::Millis(1100), 800, TimeDelta::Millis(10)), false));
  // After hold expires with a calm queue (and the 3 s window max fading),
  // drop mode clears.
  bool active = true;
  for (int i = 0; i < 100 && active; ++i) {
    active = detector.OnState(
        MakeState(Timestamp::Millis(1500 + 50 * i), 800,
                  TimeDelta::Millis(10)),
        false);
  }
  EXPECT_FALSE(active);
  EXPECT_EQ(detector.severity(), 0.0);
}

TEST(DropDetectorTest, StaysActiveWhileQueueHigh) {
  DropDetector detector;
  for (int i = 0; i < 20; ++i) {
    detector.OnState(MakeState(Timestamp::Millis(50 * i), 2000), false);
  }
  detector.OnState(MakeState(Timestamp::Seconds(1), 600), false);
  // Queue stays above the clear threshold long past the hold time.
  for (int i = 0; i < 60; ++i) {
    EXPECT_TRUE(detector.OnState(
        MakeState(Timestamp::Millis(1050 + 50 * i), 600,
                  TimeDelta::Millis(100)),
        false));
  }
}

TEST(DropDetectorTest, SeverityScalesWithFall) {
  DropDetector detector;
  for (int i = 0; i < 20; ++i) {
    detector.OnState(MakeState(Timestamp::Millis(50 * i), 2000), false);
  }
  detector.OnState(MakeState(Timestamp::Millis(1000), 400), false);
  EXPECT_NEAR(detector.severity(), 0.8, 0.01);
}

}  // namespace
}  // namespace rave::core
